"""Tests for the discrete-event CPE-mesh simulator."""

import pytest

from repro.hw.mesh_sim import (
    MeshOp,
    MeshSimulator,
    gemm_inner_schedule,
    naive_single_bus_schedule,
)
from repro.hw.rlc import RegisterComm
from repro.hw.spec import SW_PARAMS


class TestPrimitives:
    def test_single_broadcast_duration(self):
        sim = MeshSimulator()
        trace = sim.run([MeshOp(kind="row_bcast", src=(2, 3), nbytes=1024)])
        expected = sim._startup + 1024 / (SW_PARAMS.rlc_bcast_bw / 8)
        assert trace.finish_s == pytest.approx(expected)

    def test_same_bus_serializes(self):
        sim = MeshSimulator()
        one = sim.run([MeshOp(kind="row_bcast", src=(0, 0), nbytes=4096)]).finish_s
        two = sim.run(
            [
                MeshOp(kind="row_bcast", src=(0, 0), nbytes=4096),
                MeshOp(kind="row_bcast", src=(0, 5), nbytes=4096),
            ]
        ).finish_s
        assert two == pytest.approx(2 * one, rel=1e-9)

    def test_distinct_buses_parallel(self):
        sim = MeshSimulator()
        one = sim.run([MeshOp(kind="row_bcast", src=(0, 0), nbytes=4096)]).finish_s
        both = sim.run(
            [
                MeshOp(kind="row_bcast", src=(0, 0), nbytes=4096),
                MeshOp(kind="row_bcast", src=(1, 0), nbytes=4096),
            ]
        ).finish_s
        assert both == pytest.approx(one, rel=1e-9)

    def test_p2p_requires_row_or_col(self):
        sim = MeshSimulator()
        with pytest.raises(ValueError):
            sim.run([MeshOp(kind="p2p", src=(0, 0), dst=(1, 1), nbytes=32)])
        ok = sim.run([MeshOp(kind="p2p", src=(0, 0), dst=(0, 7), nbytes=32)])
        assert ok.finish_s > 0

    def test_receiver_waits_for_data(self):
        # A compute on (0, 1) in step 1 must wait for the step-0 broadcast
        # it receives.
        sim = MeshSimulator()
        trace = sim.run(
            [
                MeshOp(kind="row_bcast", src=(0, 0), nbytes=8192, step=0),
                MeshOp(kind="compute", src=(0, 1), flops=1.0, step=1),
            ]
        )
        bcast_finish = trace.per_op_finish[0]
        assert trace.per_op_finish[1] > bcast_finish

    def test_compute_efficiency_validated(self):
        sim = MeshSimulator()
        with pytest.raises(ValueError):
            sim.run([MeshOp(kind="compute", src=(0, 0), flops=1.0, efficiency=0.0)])


class TestGemmSchedule:
    def test_matches_analytic_rlc_model(self):
        """Conflict-free 8-step schedule: per-step broadcast time equals the
        analytic aggregate-bandwidth figure (all 8 buses of a kind busy)."""
        tile = 4096.0
        sim = MeshSimulator()
        ops = gemm_inner_schedule(tile, tile, tile_flops=0.0, efficiency=1.0)
        # Drop computes: compare pure communication.
        comm_ops = [o for o in ops if o.kind != "compute"]
        trace = sim.run(comm_ops)
        rlc = RegisterComm()
        # 8 steps; in each, a row bus moves one A tile and a col bus one B
        # tile (concurrently across the 8 buses of each kind).
        per_step = max(
            sim._startup + tile / (SW_PARAMS.rlc_bcast_bw / 8),
            sim._startup + tile / (SW_PARAMS.rlc_bcast_bw / 8),
        )
        assert trace.finish_s == pytest.approx(8 * per_step, rel=1e-6)
        # Cross-check against the analytic aggregate model: moving 8 tiles
        # per step at the aggregate bandwidth.
        analytic = 8 * rlc.broadcast_time(8 * tile)
        assert trace.finish_s == pytest.approx(analytic + 8 * sim._startup * 0, rel=0.2)

    def test_all_sixteen_buses_used(self):
        ops = gemm_inner_schedule(1024, 1024, 100.0)
        trace = MeshSimulator().run(ops)
        assert len(trace.bus_busy_s) == 16

    def test_compute_overlaps_with_next_step(self):
        # With heavy compute the communication hides under it: total time
        # is dominated by 8 compute phases, not 8 comms + 8 computes.
        tile, flops = 256.0, 1e6
        trace = MeshSimulator().run(gemm_inner_schedule(tile, tile, flops))
        compute_total = 8 * flops / (SW_PARAMS.cpe_peak_flops * 0.8)
        assert trace.finish_s < compute_total * 1.5

    def test_naive_schedule_is_worse(self):
        """Funneling everything through one row bus serializes the mesh —
        the quantitative version of Principle 4's 'use the whole mesh'."""
        tile = 4096.0
        good = MeshSimulator().run(gemm_inner_schedule(tile, tile, 0.0)).finish_s
        bad = MeshSimulator().run(naive_single_bus_schedule(tile, tile, 0.0)).finish_s
        assert bad > 3 * good

    def test_bus_utilization_metric(self):
        trace = MeshSimulator().run(gemm_inner_schedule(2048, 2048, 0.0))
        assert 0.5 < trace.max_bus_utilization <= 1.0
