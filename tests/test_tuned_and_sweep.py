"""Tests for the size-tuned allreduce dispatcher and the sweep harness."""

import numpy as np
import pytest

from repro.harness import allreduce_sweep
from repro.simmpi import SimComm, block_placement
from repro.simmpi.collectives.tuned import crossover_bytes, tuned_allreduce
from repro.topology import LinearCostModel, TaihuLightFabric

MODEL = LinearCostModel(alpha=1e-6, beta1=1e-10, beta2=4e-10, gamma=3e-11)


def make_comm(p=8, q=4, cost=MODEL):
    fab = TaihuLightFabric(n_nodes=max(p, q), nodes_per_supernode=q)
    return SimComm(fab, block_placement(p, min(p, q)), cost=cost)


class TestTunedDispatch:
    def test_correct_for_all_sizes(self):
        for n_elems in (3, 100, 100_000):
            comm = make_comm()
            rng = np.random.default_rng(n_elems)
            bufs = [rng.normal(size=n_elems) for _ in range(8)]
            expected = np.sum(bufs, axis=0)
            tuned_allreduce(comm, bufs)
            for b in bufs:
                np.testing.assert_allclose(b, expected, rtol=1e-10)

    def test_small_messages_use_fewer_reduce_steps(self):
        # Binomial path: log(p) reduce steps (+ broadcasts, no halving).
        comm = make_comm()
        bufs = [np.ones(2) for _ in range(8)]
        result = tuned_allreduce(comm, bufs)
        assert result.alpha_count == 6  # 3 reduce + 3 broadcast steps

    def test_large_messages_use_rhd(self):
        comm = make_comm()
        n = 1 << 18
        bufs = [np.ones(n) for _ in range(8)]
        result = tuned_allreduce(comm, bufs)
        # RHD's signature: geometric step sizes -> reduce_bytes = (p-1)/p * n.
        assert result.reduce_bytes == pytest.approx(7 / 8 * n * 8)

    def test_crossover_sensible(self):
        comm = make_comm()
        x = crossover_bytes(comm)
        assert 0 < x < 1e6
        # Higher latency pushes the crossover up.
        slow = make_comm(cost=LinearCostModel(alpha=1e-4, beta1=1e-10, beta2=4e-10, gamma=0))
        assert crossover_bytes(slow) > x

    def test_crossover_without_model(self):
        comm = make_comm(cost=None)
        assert crossover_bytes(comm) == 2048.0

    def test_two_ranks_prefer_tree(self):
        comm = make_comm(p=2, q=4)
        assert crossover_bytes(comm) == float("inf")


class TestSweepHarness:
    @pytest.fixture(scope="class")
    def points(self):
        return allreduce_sweep.generate(sizes=(1024, 1 << 20))

    def test_grid_complete(self, points):
        assert len(points) == 2 * 4

    def test_small_message_ring_loses_on_latency(self, points):
        at_1k = {p.algorithm: p.time_s for p in points if p.nbytes == 1024}
        assert at_1k["ring"] > at_1k["rhd (block)"]

    def test_large_message_tree_loses_on_bandwidth(self, points):
        at_1m = {p.algorithm: p.time_s for p in points if p.nbytes == 1 << 20}
        assert at_1m["binomial"] > at_1m["rhd (block)"]

    def test_round_robin_wins_at_every_size(self, points):
        for n in (1024, 1 << 20):
            at = {p.algorithm: p.time_s for p in points if p.nbytes == n}
            assert at["rhd (round-robin)"] <= at["rhd (block)"] + 1e-12

    def test_render(self, points):
        text = allreduce_sweep.render(points)
        assert "allreduce sweep" in text and "rhd (round-robin)" in text
