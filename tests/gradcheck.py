"""Central-difference gradient checking helpers for layer tests."""

from __future__ import annotations

import numpy as np

from repro.frame.blob import Blob


def run_layer(layer, inputs: list[np.ndarray]) -> list[Blob]:
    """Set up a layer on fresh blobs and run one forward pass.

    Returns ``[bottom..., top...]`` blobs.
    """
    bottoms = []
    for i, arr in enumerate(inputs):
        b = Blob(f"bottom{i}", arr.shape, dtype=np.float64)
        b.data = arr
        bottoms.append(b)
    n_tops = getattr(layer, "n_tops", 1)
    tops = [Blob(f"top{i}", dtype=np.float64) for i in range(n_tops)]
    layer.setup(bottoms, tops)
    layer.forward(bottoms, tops)
    return bottoms + tops


def layer_loss(layer, inputs: list[np.ndarray], weight: np.ndarray) -> float:
    """Scalar probe: sum(top * weight) after a fresh forward."""
    blobs = run_layer(layer, inputs)
    top = blobs[len(inputs)]
    return float(np.sum(top.data * weight))


def check_input_gradients(
    layer_factory,
    inputs: list[np.ndarray],
    *,
    input_index: int = 0,
    n_samples: int = 6,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-7,
    seed: int = 0,
) -> None:
    """Compare analytic bottom diffs against central differences.

    ``layer_factory()`` must build a *fresh, deterministic* layer each call
    (same weights, same dropout mask policy) so finite differences probe
    the same function.
    """
    rng = np.random.default_rng(seed)
    layer = layer_factory()
    blobs = run_layer(layer, inputs)
    bottoms, top = blobs[: len(inputs)], blobs[len(inputs)]
    weight = rng.normal(size=top.shape)
    top.diff = weight
    layer.backward([top] + blobs[len(inputs) + 1 :], bottoms)
    analytic = bottoms[input_index].diff

    x = inputs[input_index]
    flat_indices = rng.choice(x.size, size=min(n_samples, x.size), replace=False)
    for flat in flat_indices:
        idx = np.unravel_index(flat, x.shape)
        xp = [a.copy() for a in inputs]
        xm = [a.copy() for a in inputs]
        xp[input_index][idx] += eps
        xm[input_index][idx] -= eps
        fp = layer_loss(layer_factory(), xp, weight)
        fm = layer_loss(layer_factory(), xm, weight)
        numeric = (fp - fm) / (2 * eps)
        got = analytic[idx]
        assert np.isclose(got, numeric, rtol=rtol, atol=atol), (
            f"input grad mismatch at {idx}: analytic={got}, numeric={numeric}"
        )


def check_param_gradients(
    layer_factory,
    inputs: list[np.ndarray],
    *,
    param_index: int = 0,
    n_samples: int = 6,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-7,
    seed: int = 0,
) -> None:
    """Compare analytic parameter diffs against central differences."""
    rng = np.random.default_rng(seed)
    layer = layer_factory()
    blobs = run_layer(layer, inputs)
    bottoms, top = blobs[: len(inputs)], blobs[len(inputs)]
    weight = rng.normal(size=top.shape)
    top.diff = weight
    layer.backward([top] + blobs[len(inputs) + 1 :], bottoms)
    param = layer.params[param_index]
    analytic = param.diff.copy()

    w0 = param.data.copy()
    flat_indices = rng.choice(w0.size, size=min(n_samples, w0.size), replace=False)
    for flat in flat_indices:
        idx = np.unravel_index(flat, w0.shape)

        def probe(delta: float) -> tuple[float, float]:
            """Returns (loss, actually-applied parameter value)."""
            fresh = layer_factory()
            fresh_blobs = run_layer(fresh, inputs)
            fresh.params[param_index].data[idx] += delta
            applied = float(fresh.params[param_index].data[idx])
            fresh.forward(fresh_blobs[: len(inputs)], [fresh_blobs[len(inputs)]])
            return float(np.sum(fresh_blobs[len(inputs)].data * weight)), applied

        fp, wp = probe(eps)
        fm, wm = probe(-eps)
        # Params may be stored in float32; divide by the delta that was
        # actually representable, not the nominal eps.
        numeric = (fp - fm) / (wp - wm)
        got = analytic[idx]
        assert np.isclose(got, numeric, rtol=rtol, atol=atol), (
            f"param grad mismatch at {idx}: analytic={got}, numeric={numeric}"
        )
