"""Back-compat shim: the gradcheck helpers are now a library API.

The implementation moved to :mod:`repro.testing.gradcheck` so layers can
be gradient-checked by registration (see ``docs/testing.md``). Existing
tests importing ``tests.gradcheck`` keep working through this re-export.
"""

from repro.testing.gradcheck import (  # noqa: F401
    LayerCase,
    check_input_gradients,
    check_layer,
    check_param_gradients,
    layer_loss,
    register_layer,
    registered_layers,
    run_layer,
)
