"""Microbatch-schedule walker tests (:mod:`repro.pipeline.schedule`).

Pins the schedule definitions (fill-drain op order, 1F1B warmup depths),
the walk rules (stage serialism, transfer dependencies, per-direction
link serialism), the exact GPipe bubble fraction on uniform stages, the
metric gauges, the what-if scaling hooks, and the validation/deadlock
guards.
"""

from __future__ import annotations

import pytest

from repro.metrics import MetricsRegistry, collecting
from repro.pipeline import simulate_pipeline, stage_orders
from repro.trace.scaling import CostScaling, scaling


class TestStageOrders:
    def test_fill_drain_runs_forwards_then_reversed_backwards(self):
        orders = stage_orders("fill_drain", 2, 3)
        for ops in orders:
            assert ops == [("F", 0), ("F", 1), ("F", 2),
                           ("B", 2), ("B", 1), ("B", 0)]

    def test_1f1b_warmup_depth_depends_on_stage(self):
        orders = stage_orders("1f1b", 3, 4)
        # Last stage: no warmup, strict alternation.
        assert orders[2] == [("F", 0), ("B", 0), ("F", 1), ("B", 1),
                             ("F", 2), ("B", 2), ("F", 3), ("B", 3)]
        # First stage: S - 1 = 2 warmup forwards.
        assert orders[0][:2] == [("F", 0), ("F", 1)]
        assert orders[0][2:4] == [("F", 2), ("B", 0)]

    @pytest.mark.parametrize("schedule", ["fill_drain", "1f1b"])
    @pytest.mark.parametrize("S,M", [(1, 1), (2, 4), (4, 2), (5, 8)])
    def test_every_microbatch_runs_once_each_way(self, schedule, S, M):
        for ops in stage_orders(schedule, S, M):
            assert sorted(m for k, m in ops if k == "F") == list(range(M))
            assert sorted(m for k, m in ops if k == "B") == list(range(M))

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            stage_orders("zigzag", 2, 2)
        with pytest.raises(ValueError):
            stage_orders("1f1b", 0, 2)
        with pytest.raises(ValueError):
            stage_orders("1f1b", 2, 0)


class TestWalk:
    def test_gpipe_bubble_formula_uniform_stages(self):
        S, M = 4, 8
        t = simulate_pipeline([1.0] * S, [1.0] * S, n_microbatches=M,
                              schedule="fill_drain")
        assert t.bubble_frac == (S - 1) / (M + S - 1)
        assert t.makespan_s == 2.0 * (M + S - 1)

    def test_1f1b_matches_fill_drain_makespan_on_uniform_stages(self):
        kw = dict(n_microbatches=8)
        fd = simulate_pipeline([1.0] * 4, [1.0] * 4, schedule="fill_drain", **kw)
        ob = simulate_pipeline([1.0] * 4, [1.0] * 4, schedule="1f1b", **kw)
        assert ob.makespan_s == fd.makespan_s
        assert ob.bubble_frac == fd.bubble_frac

    def test_single_stage_has_no_bubble(self):
        t = simulate_pipeline([2.0], [3.0], n_microbatches=5)
        assert t.bubble_frac == 0.0
        assert t.makespan_s == 25.0
        assert t.xfers == ()

    def test_stage_ops_never_overlap(self):
        t = simulate_pipeline([0.7, 1.3, 0.4], [1.1, 0.6, 0.9],
                              n_microbatches=6, schedule="1f1b")
        for s in range(t.n_stages):
            ops = sorted((o for o in t.ops if o.stage == s),
                         key=lambda o: o.start_s)
            for a, b in zip(ops, ops[1:]):
                assert b.start_s >= a.end_s

    def test_forward_waits_for_upstream_transfer(self):
        t = simulate_pipeline([1.0, 1.0], [1.0, 1.0], n_microbatches=2,
                              fwd_xfer_s=[0.5], bwd_xfer_s=[0.5],
                              schedule="fill_drain")
        for op in t.ops:
            if op.kind == "F" and op.stage == 1:
                (x,) = [x for x in t.xfers
                        if x.kind == "fwd" and x.microbatch == op.microbatch]
                assert op.start_s >= x.end_s

    def test_backward_waits_for_downstream_gradient(self):
        t = simulate_pipeline([1.0, 1.0], [1.0, 1.0], n_microbatches=2,
                              fwd_xfer_s=[0.25], bwd_xfer_s=[0.25])
        for op in t.ops:
            if op.kind == "B" and op.stage == 0:
                (x,) = [x for x in t.xfers
                        if x.kind == "bwd" and x.microbatch == op.microbatch]
                assert op.start_s >= x.end_s

    def test_links_are_serial_per_direction(self):
        t = simulate_pipeline([0.1, 2.0], [0.1, 2.0], n_microbatches=4,
                              fwd_xfer_s=[1.0], bwd_xfer_s=[1.0],
                              schedule="fill_drain")
        for kind in ("fwd", "bwd"):
            xs = sorted((x for x in t.xfers if x.kind == kind),
                        key=lambda x: x.start_s)
            for a, b in zip(xs, xs[1:]):
                assert b.start_s >= a.end_s
            # The fast producer outruns the slow link: some transfers queue.
            if kind == "fwd":
                assert any(x.start_s > x.ready_s for x in xs)

    def test_transfers_start_at_producer_end_when_link_is_free(self):
        t = simulate_pipeline([1.0, 1.0], [1.0, 1.0], n_microbatches=1,
                              fwd_xfer_s=[0.5], bwd_xfer_s=[0.5])
        for x in t.xfers:
            assert x.start_s == x.ready_s

    def test_stage_gaps_partition_the_makespan(self):
        t = simulate_pipeline([1.0, 2.0, 0.5], [1.5, 1.0, 2.0],
                              n_microbatches=4, schedule="1f1b")
        for s in range(t.n_stages):
            gap = sum(d for _, d in t.stage_gaps(s))
            assert gap + t.stage_busy_s[s] == pytest.approx(t.makespan_s)


class TestValidationAndMetrics:
    def test_mismatched_stage_arrays_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            simulate_pipeline([1.0, 1.0], [1.0], n_microbatches=1)

    def test_wrong_boundary_array_length_rejected(self):
        with pytest.raises(ValueError, match="boundary arrays"):
            simulate_pipeline([1.0, 1.0], [1.0, 1.0], n_microbatches=1,
                              fwd_xfer_s=[0.1, 0.2])

    def test_gauges_emitted_under_collection(self):
        reg = MetricsRegistry()
        with collecting(reg):
            t = simulate_pipeline([1.0] * 2, [1.0] * 2, n_microbatches=4)
        assert reg.value("pipeline.bubble_frac") == t.bubble_frac
        assert reg.value("pipeline.makespan_s") == t.makespan_s


class TestScalingHooks:
    def test_stage_factor_scales_compute(self):
        base = simulate_pipeline([1.0] * 3, [1.0] * 3, n_microbatches=4)
        with scaling(CostScaling({"stage": 2.0})):
            doubled = simulate_pipeline([1.0] * 3, [1.0] * 3, n_microbatches=4)
        assert doubled.makespan_s == pytest.approx(2.0 * base.makespan_s)
        assert doubled.bubble_frac == pytest.approx(base.bubble_frac)

    def test_p2p_factor_scales_transfers_only(self):
        kw = dict(n_microbatches=2, fwd_xfer_s=[1.0], bwd_xfer_s=[1.0])
        base = simulate_pipeline([1.0, 1.0], [1.0, 1.0], **kw)
        with scaling(CostScaling({"p2p": 10.0})):
            slow = simulate_pipeline([1.0, 1.0], [1.0, 1.0], **kw)
        assert slow.makespan_s > base.makespan_s
        assert all(x.dur_s == 10.0 for x in slow.xfers)
        assert all(o.dur_s == 1.0 for o in slow.ops)
