"""The documentation stays consistent: tier-1 wrapper around the checker.

``tools/check_docs_links.py`` (also a CI step) asserts that every
relative markdown link resolves and that every ``src/repro/*`` package is
reachable from ``docs/index.md``.
"""

from __future__ import annotations

import importlib.util
import pathlib

ROOT = pathlib.Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "check_docs_links", ROOT / "tools" / "check_docs_links.py"
)
check_docs_links = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs_links)


def test_all_doc_links_resolve_and_packages_are_indexed():
    problems = check_docs_links.check_links(ROOT)
    assert problems == []


def test_checker_detects_breakage(tmp_path):
    """The checker itself can fail (a checker that cannot fail proves nothing)."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "src" / "repro" / "ghost").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "ghost" / "__init__.py").write_text("")
    (tmp_path / "README.md").write_text("[gone](docs/nope.md)\n")
    (tmp_path / "docs" / "index.md").write_text("# index\nno links here\n")
    problems = check_docs_links.check_links(tmp_path)
    assert any("broken link" in p for p in problems)
    assert any("ghost" in p for p in problems)
