"""Chaos suite: property tests over replayed fault seeds.

Three properties, each over many seeds (>= 50 distinct seed strings are
replayed across this module):

(a) **transient bit-exactness** — allreduce results under injected
    DMA/RLC/link faults are bit-identical to the fault-free run (faults
    cost time, never data);
(b) **bitwise recovery** — after a rank crash, elastic recovery converges
    to exactly the weights of a fault-free run at the same effective
    schedule (full roster to the resume iteration, survivors after);
(c) **inertness** — with injection disabled (the default) the fault plane
    is invisible: zero-plan runs are byte-identical to plain runs, and the
    ambient injector is the shared null singleton (the same pin the trace
    and metrics layers carry).
"""

import numpy as np
import pytest

from repro.faults import (
    NULL_INJECTOR,
    PROFILES,
    FaultInjector,
    FaultPlan,
    active,
    injecting,
    seed_string,
    zero_plan,
)
from repro.faults.session import run_chaos
from repro.frame.layers import (
    DataLayer,
    InnerProductLayer,
    ReLULayer,
    SoftmaxWithLossLayer,
)
from repro.frame.net import Net
from repro.parallel.trainer import DistributedTrainer
from repro.simmpi.collectives import rhd_allreduce
from repro.testing.registry import make_fuzz_comm
from repro.utils.rng import seeded_rng

#: 52 seed strings replayed for plan/injector determinism (13 per profile).
REPLAY_SEEDS = [seed_string(p, i) for p in PROFILES for i in range(13)]

#: Transient-profile seeds for the allreduce bit-exactness property.
TRANSIENT_SEEDS = [seed_string("transient", i) for i in range(20)]

#: Crash-bearing seeds for the bitwise-recovery property.
CRASH_SEEDS = [seed_string("crash", i) for i in range(6)] + [
    seed_string("chaos", i) for i in range(6)
]


class SeekableShardSource:
    """Deterministic per-worker shard cycle with the rewind protocol."""

    def __init__(self, batches):
        self.batches = list(batches)
        self.i = 0
        self.sample_shape = batches[0][0].shape[1:]

    def next_batch(self, batch_size):
        images, labels = self.batches[self.i % len(self.batches)]
        self.i += 1
        assert images.shape[0] == batch_size
        return images, labels

    def seek(self, n_batches, batch_size):
        self.i = n_batches


def make_factory(n_workers, per_worker=3, dim=5, classes=3, steps=8, seed=0):
    """Identically-initialized MLP replicas over disjoint seekable shards."""
    rng = np.random.default_rng(seed)
    data = [
        (
            rng.normal(size=(n_workers * per_worker, dim)).astype(np.float32),
            rng.integers(0, classes, size=n_workers * per_worker),
        )
        for _ in range(steps)
    ]

    def factory(rank):
        shard = SeekableShardSource(
            [
                (
                    img[rank * per_worker : (rank + 1) * per_worker],
                    lab[rank * per_worker : (rank + 1) * per_worker],
                )
                for img, lab in data
            ]
        )
        net = Net("mlp")
        net.add(DataLayer("data", shard, per_worker), bottoms=[], tops=["data", "label"])
        net.add(InnerProductLayer("ip1", 6, rng=seeded_rng(11)), ["data"], ["h"])
        net.add(ReLULayer("relu"), ["h"], ["a"])
        net.add(InnerProductLayer("ip2", classes, rng=seeded_rng(12)), ["a"], ["logits"])
        net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
        return net

    return factory


# --------------------------------------------------------------------------- #
# seed replay determinism
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", REPLAY_SEEDS)
def test_seed_replays_identically(seed):
    """Same seed string -> same plan -> same pointwise fault decisions."""
    a = FaultPlan.from_seed(seed, ranks=8, iterations=6)
    b = FaultPlan.from_seed(seed, ranks=8, iterations=6)
    assert a == b
    for site in ("dma", "rlc", "comm"):
        assert [a.transient_faults(site, n) for n in range(64)] == [
            b.transient_faults(site, n) for n in range(64)
        ]
    assert a.crashed_by(5) == b.crashed_by(5)
    assert {r: a.straggler_factor(r) for r in range(8)} == {
        r: b.straggler_factor(r) for r in range(8)
    }


# --------------------------------------------------------------------------- #
# (a) transient faults never corrupt data
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", TRANSIENT_SEEDS)
def test_allreduce_bit_exact_under_transient_faults(seed):
    index = int(seed.rsplit(":", 1)[1])
    p = (2, 5, 8, 13)[index % 4]
    rng = np.random.default_rng([0x5CAFFE, index])
    inputs = [rng.normal(size=257) for _ in range(p)]

    clean = [b.copy() for b in inputs]
    rhd_allreduce(make_fuzz_comm(p), clean, average=True)

    plan = FaultPlan.from_seed(seed, ranks=p)
    faulted = [b.copy() for b in inputs]
    comm = make_fuzz_comm(p)
    with injecting(plan) as fi:
        rhd_allreduce(comm, faulted, average=True)

    for rank in range(p):
        assert np.array_equal(faulted[rank], clean[rank]), (
            f"rank {rank} data corrupted under {seed}"
        )
    if fi.retries:
        # Retries happened and cost simulated time, attributed to "fault".
        assert comm.clock.category_total("fault") > 0


# --------------------------------------------------------------------------- #
# (b) bitwise crash recovery
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", CRASH_SEEDS)
def test_crash_recovery_matches_fault_free_reference(seed, tmp_path):
    ranks, iterations = 4, 7
    report = run_chaos(
        make_factory(ranks),
        ranks=ranks,
        iterations=iterations,
        seed=seed,
        snapshot_every=2,
        snapshot_dir=str(tmp_path),
    )
    plan = FaultPlan.from_seed(seed, ranks=ranks, iterations=iterations)
    assert plan.crashes, f"{seed} scheduled no crash"
    assert report.rank_rebuilds == len(report.recoveries) == 1
    assert report.surviving_ranks == ranks - 1
    assert report.injected["rank_crash"] == 1
    assert report.weights_match, (
        f"recovered weights diverged from the fault-free reference ({seed})"
    )


def test_recovery_without_snapshots_is_fatal():
    from repro.errors import FaultError

    trainer = DistributedTrainer(make_factory(2), 2, algorithm="rhd")
    plan = FaultPlan(
        seed="x", profile="crash", ranks=2, iterations=4, crashes=((1, 1),)
    )
    with injecting(plan):
        with pytest.raises(FaultError, match="snapshot"):
            trainer.step(4)


# --------------------------------------------------------------------------- #
# (c) inertness: disabled == zero plan == never built
# --------------------------------------------------------------------------- #
def test_ambient_injector_is_shared_null_singleton():
    assert active() is NULL_INJECTOR
    assert not NULL_INJECTOR.enabled
    assert isinstance(NULL_INJECTOR, FaultInjector)


def test_zero_plan_run_is_byte_identical_to_disabled_run():
    ranks, iters = 4, 5
    t_off = DistributedTrainer(make_factory(ranks), ranks, algorithm="rhd")
    s_off = t_off.step(iters)

    t_zero = DistributedTrainer(make_factory(ranks), ranks, algorithm="rhd")
    with injecting(zero_plan(ranks, iters)) as fi:
        s_zero = t_zero.step(iters)

    assert s_off.losses == s_zero.losses
    assert s_off.comm_time_s == s_zero.comm_time_s
    assert t_off.comm.clock.breakdown() == t_zero.comm.clock.breakdown()
    assert np.array_equal(
        t_off.packers[0].pack_data(), t_zero.packers[0].pack_data()
    )
    assert fi.retries == 0 and not fi.injected


def test_zero_plan_hw_charges_are_byte_identical():
    from repro.hw.dma import DMAEngine
    from repro.hw.rlc import RegisterComm

    buf = np.arange(4096, dtype=np.float32)

    def drive():
        dma = DMAEngine()
        rlc = RegisterComm()
        got = dma.get(buf)
        dma.put(got, np.empty_like(buf))
        rlc.charge_p2p(2048, n_concurrent=8)
        rlc.charge_broadcast(4096, n_concurrent=8)
        return dma.clock.breakdown(), rlc.clock.breakdown(), got

    off_dma, off_rlc, off_data = drive()
    with injecting(zero_plan()):
        on_dma, on_rlc, on_data = drive()
    assert off_dma == on_dma
    assert off_rlc == on_rlc
    assert np.array_equal(off_data, on_data)


def test_mesh_degradation_stretches_but_disabled_is_inert():
    from repro.hw.mesh_sim import MeshSimulator, gemm_inner_schedule

    ops = gemm_inner_schedule(2048, 2048, 1e6)
    base = MeshSimulator().run(ops).finish_s
    again = MeshSimulator().run(ops).finish_s
    assert base == again

    with injecting(zero_plan()):
        zero = MeshSimulator().run(ops).finish_s
    assert zero == base

    plan = FaultPlan(
        seed="x", profile="degrade", ranks=1, iterations=1, mesh_factor=2.5
    )
    with injecting(plan) as fi:
        slow = MeshSimulator().run(ops).finish_s
    assert slow > base
    assert fi.injected["mesh_degrade"] >= 1


def test_straggler_slows_collective_but_keeps_data():
    p = 4
    rng = np.random.default_rng(3)
    inputs = [rng.normal(size=129) for _ in range(p)]
    clean = [b.copy() for b in inputs]
    base_comm = make_fuzz_comm(p)
    rhd_allreduce(base_comm, clean, average=False)

    plan = FaultPlan(
        seed="x", profile="degrade", ranks=p, iterations=1,
        stragglers={2: 3.0},
    )
    slowed = [b.copy() for b in inputs]
    slow_comm = make_fuzz_comm(p)
    with injecting(plan) as fi:
        rhd_allreduce(slow_comm, slowed, average=False)
    assert slow_comm.clock.now > base_comm.clock.now
    assert fi.injected["straggler"] >= 1
    for a, b in zip(clean, slowed):
        assert np.array_equal(a, b)


# --------------------------------------------------------------------------- #
# (b') crash between bucket launches (overlap-aware path)
# --------------------------------------------------------------------------- #
def test_crash_between_bucket_launches_recovers_bitwise(tmp_path):
    """A rank dying after some buckets of an iteration already launched
    must discard the in-flight queue (no partially-reduced gradients leak)
    and recover to weights bit-identical to a fault-free reference."""
    ranks, iterations, crash_iter = 4, 6, 3

    trainer = DistributedTrainer(
        make_factory(ranks),
        ranks,
        algorithm="rhd",
        snapshot_prefix=str(tmp_path / "snap"),
        snapshot_every=2,
        bucket_mb=1e-4,  # ~100-byte buckets -> several per iteration
        backward_s=1.0,
    )
    assert trainer.packers[0].n_buckets >= 2

    # Kill rank 2 on the SECOND bucket launch of iteration `crash_iter`:
    # bucket 0's allreduce has already completed and sits in the queue.
    real = trainer._collective
    state = {"calls": 0, "armed": True}

    def chaotic(comm, buffers, average=False):
        if state["armed"] and trainer.global_iter == crash_iter:
            state["calls"] += 1
            if state["calls"] == 2:
                state["armed"] = False
                assert trainer._queue is not None
                assert len(trainer._queue.pending) == 1
                comm.failed_ranks = frozenset({2})
        return real(comm, buffers, average=average)

    trainer._collective = chaotic
    trainer.step(iterations)

    assert not state["armed"], "crash never triggered"
    assert trainer._queue is None, "in-flight bucket queue leaked past recovery"
    assert trainer.recoveries == [(2, (0, 1, 3))]
    assert trainer.replicas_in_sync()

    # Fault-free FUSED reference replaying the same shrink schedule: the
    # recovered bucketed run must land on bit-identical weights.
    ref = DistributedTrainer(make_factory(ranks), ranks, algorithm="rhd")
    done = 0
    for resume, survivors in trainer.recoveries:
        if resume > done:
            ref.step(resume - done)
            done = resume
        ref.shrink_to(list(survivors))
    ref.step(iterations - done)
    assert np.array_equal(
        trainer.packers[0].pack_data(), ref.packers[0].pack_data()
    ), "bucketed crash recovery diverged from the fault-free reference"
