"""Registry-driven kernel conformance: differential fuzz + cost invariants.

One test per registered kernel spec (parametrized by the conformance
plugin): every seeded configuration must match the dense NumPy reference
within the spec's tolerance *and* satisfy the cost-model invariant battery
(positive finite time, DMA conservation, monotone scaling, LDM budget).
Failures print reproducible seed strings (``repro.testing.reproduce``).
"""

from repro.testing import differential


def test_kernel_conformance(kernel_name, conformance_configs):
    reports = differential.fuzz_kernel(kernel_name, n_configs=conformance_configs)
    assert len(reports) == conformance_configs
    bad = [r for r in reports if not r.ok]
    assert not bad, differential.summarize(reports)


def test_kernel_fuzz_is_reproducible(kernel_name):
    """The seed string replays the exact configuration and verdict."""
    first = differential.fuzz_kernel(kernel_name, n_configs=3)
    for report in first:
        replay = differential.reproduce(report.seed)
        assert replay.config == report.config
        assert replay.ok == report.ok
        assert replay.max_ulp == report.max_ulp
