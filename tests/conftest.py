"""Test-tree configuration: load the conformance pytest plugin.

The plugin (``repro.testing.pytest_plugin``) parametrizes any test that
uses the ``kernel_name`` / ``collective_name`` / ``layer_name`` fixtures
over the conformance registry and registers the ``conformance`` marker.
"""

pytest_plugins = ["repro.testing.pytest_plugin"]
