"""Registry-driven collective conformance + cross-algorithm equivalence.

Beyond the per-collective differential fuzz (every registered algorithm
vs the dense reduction reference), this pins the cross-algorithm claim the
paper's Fig. 7 comparison rests on: *every* allreduce in the family —
ring, recursive halving/doubling, binomial, topology-aware, and the
size-tuned dispatcher — produces identical results on the same seeded
inputs, for awkward rank counts (1, 2, 5, 8, 13) and both reduce modes.
"""

import numpy as np
import pytest

from repro.simmpi import (
    binomial_allreduce,
    rhd_allreduce,
    ring_allreduce,
    topo_aware_allreduce,
    tuned_allreduce,
)
from repro.testing import differential
from repro.testing.references import ref_allreduce
from repro.testing.registry import make_fuzz_comm

ALLREDUCE_FAMILY = {
    "ring": ring_allreduce,
    "rhd": rhd_allreduce,
    "binomial": binomial_allreduce,
    "topo_aware": topo_aware_allreduce,
    "tuned": tuned_allreduce,
}

#: Deliberately awkward rank counts: singleton, pair, prime, power of two,
#: and a prime that exercises the non-power-of-two fold steps.
EQUIVALENCE_RANKS = (1, 2, 5, 8, 13)

#: All reduce modes the family supports (plain sum and averaged sum).
REDUCE_OPS = (False, True)


def test_collective_conformance(collective_name, conformance_configs):
    reports = differential.fuzz_collective(
        collective_name, n_configs=conformance_configs
    )
    assert len(reports) == conformance_configs
    bad = [r for r in reports if not r.ok]
    assert not bad, differential.summarize(reports)


@pytest.mark.parametrize("p", EQUIVALENCE_RANKS)
@pytest.mark.parametrize("average", REDUCE_OPS)
def test_allreduce_family_is_equivalent(p, average):
    """All five algorithms agree with each other and with the reference."""
    rng = np.random.default_rng([0x5CAFFE, p, int(average)])
    inputs = [rng.normal(size=193) for _ in range(p)]
    expected = ref_allreduce(inputs, average=average)
    outcomes = {}
    for name, fn in ALLREDUCE_FAMILY.items():
        bufs = [b.copy() for b in inputs]
        fn(make_fuzz_comm(p), bufs, average=average)
        outcomes[name] = bufs
        for rank, (got, want) in enumerate(zip(bufs, expected)):
            np.testing.assert_allclose(
                got, want, rtol=1e-9, atol=1e-9,
                err_msg=f"{name} diverges from reference at rank {rank} (p={p})",
            )
    # Pairwise agreement (tighter than reference tolerance: the family
    # must agree with itself to float64 round-off).
    baseline = outcomes["rhd"]
    for name, bufs in outcomes.items():
        for rank in range(p):
            np.testing.assert_allclose(
                bufs[rank], baseline[rank], rtol=1e-12, atol=1e-12,
                err_msg=f"{name} != rhd at rank {rank} (p={p}, average={average})",
            )


@pytest.mark.parametrize("p", EQUIVALENCE_RANKS)
def test_reduce_matches_allreduce_root(p):
    """The rooted reduce agrees with the allreduce family at every root."""
    from repro.simmpi import reduce as sim_reduce

    rng = np.random.default_rng([0xBEEF, p])
    inputs = [rng.normal(size=57) for _ in range(p)]
    expected = ref_allreduce(inputs)[0]
    for root in {0, p - 1, p // 2}:
        bufs = [b.copy() for b in inputs]
        sim_reduce(make_fuzz_comm(p), bufs, root=root)
        np.testing.assert_allclose(bufs[root], expected, rtol=1e-9, atol=1e-9)


# --------------------------------------------------------------------------- #
# bucketed vs fused gradient exchange
# --------------------------------------------------------------------------- #
#: Awkward worker counts for the bucketed-equals-fused trainer property.
BUCKETED_RANKS = (2, 5, 8, 13)


@pytest.mark.parametrize("p", BUCKETED_RANKS)
@pytest.mark.parametrize("algorithm", ("ring", "rhd", "topo-aware"))
def test_bucketed_training_is_bit_identical_to_fused(p, algorithm):
    """Overlap-aware bucketing must change the comm *schedule*, never the
    weights: a bucketed run and a fused run are bit-identical after
    several steps, for every allreduce algorithm and awkward rank count."""
    from tests.test_distributed_trainer import ShardSource, build_net, make_batches
    from repro.parallel import DistributedTrainer

    per_worker, dim, classes, steps = 3, 5, 3, 4
    data = make_batches(steps, p, per_worker, dim, classes, seed=p)

    def factory(rank):
        shard = ShardSource(
            [
                (img[rank * per_worker : (rank + 1) * per_worker],
                 lab[rank * per_worker : (rank + 1) * per_worker])
                for img, lab in data
            ]
        )
        return build_net(shard, per_worker, classes)

    fused = DistributedTrainer(factory, p, algorithm=algorithm)
    fused.step(steps)
    # ~100-byte buckets force several buckets for the tiny MLP.
    bucketed = DistributedTrainer(
        factory, p, algorithm=algorithm, bucket_mb=1e-4, backward_s=1.0
    )
    bucketed.step(steps)

    assert bucketed.packers[0].n_buckets > 1
    assert bucketed.replicas_in_sync()
    assert np.array_equal(
        fused.packers[0].pack_data(), bucketed.packers[0].pack_data()
    ), f"bucketed != fused for {algorithm} at p={p}"
