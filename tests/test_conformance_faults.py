"""Conformance coverage for faulted collectives + the fault-trace golden.

The ``fault_seed`` fixture (from ``repro.testing.pytest_plugin``) replays
every chaos conformance seed — all fault profiles — so ``pytest -m
conformance`` exercises the collectives *under injection* at the same rank
set the clean equivalence tests use. Faults may stretch simulated time;
they must never change a single bit of the reduced data.

The golden-file test pins the exact Chrome JSON a small deterministic
faulted trace exports (``tests/golden/trace_faults.json``), including the
``fault_inject`` instants and ``fault_retry`` spans. Regenerate with
``PYTHONPATH=src python -m tests.test_conformance_faults`` after an
intentional format change.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.errors import CollectiveTimeout
from repro.faults import FaultPlan, charge_transient, injecting
from repro.hw.clock import SimClock
from repro.simmpi import rhd_allreduce
from repro.testing.references import ref_allreduce
from repro.testing.registry import make_fuzz_comm
from repro.trace import Tracer, to_chrome, tracing, validate_chrome

GOLDEN = pathlib.Path(__file__).parent / "golden" / "trace_faults.json"

#: Same rank set the clean collective-equivalence conformance tests sweep.
FAULTED_RANKS = (2, 5, 8, 13)


def test_faulted_allreduce_stays_bit_exact(fault_seed):
    """Every conformance fault seed, every rank count: data unharmed.

    Crash-profile seeds are inert here by design — ``failed_ranks`` is only
    raised by the elastic trainer — so every profile can replay safely; the
    surviving effect on a bare collective is transient link retries.
    """
    for p in FAULTED_RANKS:
        rng = np.random.default_rng([0xFA017, p])
        inputs = [rng.normal(size=193) for _ in range(p)]
        expect = ref_allreduce(inputs, average=True)

        clean = [b.copy() for b in inputs]
        clean_comm = make_fuzz_comm(p)
        rhd_allreduce(clean_comm, clean, average=True)

        faulted = [b.copy() for b in inputs]
        comm = make_fuzz_comm(p)
        plan = FaultPlan.from_seed(fault_seed, ranks=p)
        with injecting(plan):
            rhd_allreduce(comm, faulted, average=True)

        for rank in range(p):
            assert np.array_equal(faulted[rank], clean[rank])
            np.testing.assert_allclose(faulted[rank], expect[rank], rtol=1e-12)
        # Injection can only add time, never remove it. Without stragglers
        # the added time is exactly the fault-categorized retry backoff;
        # straggler slowdown rides the regular comm charge on top.
        added = comm.clock.now - clean_comm.clock.now
        assert added >= comm.clock.category_total("fault") - 1e-15
        if not plan.stragglers:
            assert added == pytest.approx(comm.clock.category_total("fault"))


# --------------------------------------------------------------------------- #
# golden fault trace
# --------------------------------------------------------------------------- #
def faulted_tracer() -> Tracer:
    """A small deterministic trace containing every fault span kind."""
    tr = Tracer()
    plan = FaultPlan(
        seed="golden", profile="chaos", ranks=2, iterations=1,
        dma_rate=0.6, comm_rate=0.3, timeout_s=1e-3,
    )
    with tracing(tr), injecting(plan):
        with tr.context("rank0"):
            clock = SimClock()
            for _ in range(6):
                charge_transient("dma", clock, 1e-4, track="dma")
            comm = make_fuzz_comm(2)
            comm.failed_ranks = frozenset({1})
            comm.timeout_s = plan.timeout_s
            bufs = [np.zeros(8), np.zeros(8)]
            with pytest.raises(CollectiveTimeout):
                rhd_allreduce(comm, bufs, average=True)
    return tr


def render(tracer: Tracer) -> str:
    return json.dumps(to_chrome(tracer), indent=1, sort_keys=True) + "\n"


class TestGoldenFaultTrace:
    def test_matches_checked_in_golden_file(self):
        assert GOLDEN.is_file(), (
            f"golden file missing: {GOLDEN}; regenerate with "
            "`python -m tests.test_conformance_faults`"
        )
        assert render(faulted_tracer()) == GOLDEN.read_text()

    def test_golden_is_valid_chrome_format(self):
        assert validate_chrome(json.loads(GOLDEN.read_text())) == []

    def test_golden_contains_fault_events(self):
        events = json.loads(GOLDEN.read_text())["traceEvents"]
        cats = {e.get("cat") for e in events}
        assert "fault_inject" in cats
        assert "fault_retry" in cats
        names = {e["name"] for e in events if e.get("cat") == "fault_inject"}
        assert "rank_crash" in names
        retries = [e for e in events if e.get("cat") == "fault_retry"]
        assert all(e["ph"] == "X" and e["dur"] > 0 for e in retries)


if __name__ == "__main__":  # pragma: no cover - golden regeneration helper
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(render(faulted_tracer()))
    print(f"wrote {GOLDEN}")
