"""Dynamic-batching engine invariants (:mod:`repro.serve.engine`).

The scheduling contract from the module docstring, pinned: batch bound,
FIFO order, the idle-dispatch deadline, shedding at the queue bound,
latency-split accounting, bit-for-bit determinism, graceful degradation
under a fault plan, and zero collector state when tracing/metrics are off.
"""

from __future__ import annotations

import pytest

from repro.faults.injector import FaultInjector, injecting
from repro.faults.plan import FaultPlan
from repro.metrics.registry import (
    MetricsRegistry,
    NULL_METRICS,
    active as metrics_active,
    collecting,
)
from repro.serve.arrivals import ArrivalPlan, Request
from repro.serve.costmodel import TableCostModel
from repro.serve.engine import ServeConfig, ServingEngine
from repro.trace.tracer import NULL_TRACER, Tracer, active as tracer_active, tracing

#: Flat 20 ms forward regardless of batch — the "batching is free" abstraction
#: of the four core groups, spelled out per batch so nothing extrapolates.
FLAT = TableCostModel({b: 0.020 for b in range(1, 9)})


def poisson(rate=100.0, n=80, index=0):
    return ArrivalPlan.from_seed(
        f"poisson:0xc0ffee:{index}", rate_rps=rate, n_requests=n
    ).generate()


def run(requests, cost_model=FLAT, **knobs):
    return ServingEngine(cost_model, ServeConfig(**knobs)).run(requests)


class TestConfig:
    @pytest.mark.parametrize(
        "knobs",
        [
            {"max_batch": 0},
            {"max_wait_s": -0.1},
            {"queue_bound": 0},
            {"slo_s": 0.0},
        ],
    )
    def test_invalid_knobs_rejected(self, knobs):
        with pytest.raises(ValueError):
            ServeConfig(**knobs)


class TestInvariants:
    def test_every_request_is_accounted_exactly_once(self):
        report = run(poisson(), max_batch=4, queue_bound=8)
        assert report.n_completed + report.n_shed == report.n_requests == 80
        assert sorted(r.rid for r in report.records) == list(range(80))

    def test_batch_never_exceeds_max_batch(self):
        report = run(poisson(rate=500.0), max_batch=3)
        assert report.records and all(
            r.batch_size <= 3 for r in report.completed
        )

    def test_fifo_dispatch_order(self):
        report = run(poisson(), max_batch=4)
        by_arrival = sorted(report.completed, key=lambda r: (r.arrival_s, r.rid))
        batch_ids = [r.batch_id for r in by_arrival]
        assert batch_ids == sorted(batch_ids)

    def test_idle_dispatch_never_overshoots_the_deadline(self):
        """A request admitted while the engine is idle (queue_s == 0) waits
        at most max_wait_s for its batch to form."""
        report = run(poisson(rate=30.0), max_batch=8, max_wait_s=0.005)
        idle = [r for r in report.completed if r.queue_s == 0.0]
        assert idle  # the low-rate stream must exercise the idle path
        assert all(r.batch_s <= 0.005 + 1e-12 for r in idle)

    def test_sheds_exactly_past_the_queue_bound(self):
        burst = tuple(Request(rid=i, arrival_s=0.001) for i in range(20))
        report = run(burst, max_batch=2, max_wait_s=0.0, queue_bound=4)
        # t=0.001: 4 admitted, 16 arrivals find the bound -> shed... but the
        # engine drains 2 per dispatch at t, so admission interleaves; the
        # invariant is just conservation + a nonzero shed count.
        assert report.n_shed > 0
        assert report.n_completed + report.n_shed == 20
        shed = [r for r in report.records if r.shed]
        assert all(r.batch_size == 0 and r.latency_s == 0.0 for r in shed)

    def test_latency_split_sums_to_done_minus_arrival(self):
        report = run(poisson(rate=200.0), max_batch=4, queue_bound=16)
        for r in report.completed:
            assert r.latency_s == pytest.approx(
                r.queue_s + r.batch_s + r.compute_s
            )
            assert r.done_s == pytest.approx(r.arrival_s + r.latency_s)
            assert r.queue_s >= 0 and r.batch_s >= -1e-12 and r.compute_s > 0

    def test_deterministic_replay(self):
        a = run(poisson(index=4), max_batch=4)
        b = run(poisson(index=4), max_batch=4)
        assert a.records == b.records
        assert a.makespan_s == b.makespan_s and a.n_batches == b.n_batches


class TestBatchingWins:
    def test_dynamic_batching_beats_batch1_under_overload(self):
        """Offered load is 2.5x the batch=1 service rate but well under the
        batched one; with a flat cost table batching is free throughput."""
        requests = poisson(rate=125.0, n=120)
        slo = dict(slo_s=0.2, queue_bound=32)
        batch1 = run(requests, max_batch=1, max_wait_s=0.0, **slo)
        dynamic = run(requests, max_batch=8, max_wait_s=0.005, **slo)
        assert dynamic.throughput_rps > batch1.throughput_rps
        assert dynamic.goodput_rps > batch1.goodput_rps
        assert dynamic.slo_attainment > batch1.slo_attainment
        assert dynamic.mean_batch_size > 1.5


class TestFaults:
    def test_degrades_by_shedding_not_dying(self):
        plan = FaultPlan.from_seed("chaos:0x5caffe:0", ranks=1, iterations=1)
        with injecting(FaultInjector(plan)):
            report = run(poisson(rate=120.0, n=100), max_batch=4, queue_bound=8)
        assert report.fault_seed == "chaos:0x5caffe:0"
        assert report.n_completed + report.n_shed == 100
        assert report.makespan_s > 0

    def test_degradation_slows_compute_vs_fault_free(self):
        requests = poisson(rate=50.0, n=60)
        clean = run(requests, max_batch=4)
        plan = FaultPlan.from_seed("degrade:0x5caffe:0", ranks=1, iterations=1)
        with injecting(FaultInjector(plan)):
            slowed = run(requests, max_batch=4)
        assert slowed.makespan_s >= clean.makespan_s
        assert clean.fault_seed is None


class TestInertness:
    def test_disabled_collectors_allocate_no_state(self):
        assert tracer_active() is NULL_TRACER
        assert metrics_active() is NULL_METRICS
        before = len(NULL_METRICS)
        bare = run(poisson(index=2), max_batch=4)
        assert tracer_active() is NULL_TRACER
        assert len(NULL_METRICS) == before == 0
        assert len(NULL_TRACER.spans) == 0
        # ... and the result is bit-identical with collectors installed.
        tracer, registry = Tracer(), MetricsRegistry()
        with tracing(tracer), collecting(registry):
            observed = run(poisson(index=2), max_batch=4)
        assert observed.records == bare.records
        assert observed.makespan_s == bare.makespan_s
        assert len(tracer.spans) > 0 and len(registry) > 0
