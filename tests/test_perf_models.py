"""Tests for the roofline baselines and whole-net timing engine."""

import numpy as np
import pytest

from repro.frame.model_zoo import lenet
from repro.perf import (
    CPU_DEVICE,
    K40M_DEVICE,
    RooflineDevice,
    cpu_layer_time,
    gpu_layer_time,
    net_iteration_time,
    net_layer_timings,
    net_throughput,
)
from repro.perf.workload import layer_workload
from repro.perf.gpu_k40m import conv_efficiency as gpu_conv_eff
from repro.frame.layers import ConvolutionLayer, ReLULayer
from repro.frame.blob import Blob
from repro.utils.rng import seeded_rng


def setup_layer(layer, shape):
    bottoms = [Blob("b", shape)]
    bottoms[0].data = np.zeros(shape, dtype=np.float32)
    tops = [Blob("t")]
    layer.setup(bottoms, tops)
    return layer


class TestRoofline:
    def test_compute_bound_kernel(self):
        dev = RooflineDevice("d", peak_flops=1e12, mem_bandwidth=1e11, launch_overhead_s=0)
        t = dev.kernel_time(flops=1e12, bytes_moved=1e9, compute_efficiency=1.0,
                            bandwidth_efficiency=1.0)
        assert t == pytest.approx(1.0)

    def test_bandwidth_bound_kernel(self):
        dev = RooflineDevice("d", peak_flops=1e15, mem_bandwidth=1e9, launch_overhead_s=0)
        t = dev.kernel_time(flops=1e9, bytes_moved=1e9, bandwidth_efficiency=1.0)
        assert t == pytest.approx(1.0)

    def test_launch_overhead_added(self):
        dev = RooflineDevice("d", 1e12, 1e11, launch_overhead_s=1e-5)
        assert dev.kernel_time(0, 0) == pytest.approx(1e-5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            K40M_DEVICE.kernel_time(-1, 0)


class TestWorkload:
    def test_conv_flops(self):
        layer = setup_layer(
            ConvolutionLayer("c", 8, 3, pad=1, rng=seeded_rng(0)), (2, 4, 10, 10)
        )
        wl = layer_workload(layer, "forward")
        assert wl.flops == pytest.approx(2 * 2 * 8 * 4 * 9 * 10 * 10)
        assert wl.kind == "conv"

    def test_backward_without_propagate_is_cheaper(self):
        layer = setup_layer(
            ConvolutionLayer("c", 8, 3, pad=1, rng=seeded_rng(0)), (2, 4, 10, 10)
        )
        layer.propagate_down = True
        full = layer_workload(layer, "backward").flops
        layer.propagate_down = False
        half = layer_workload(layer, "backward").flops
        assert half == pytest.approx(full / 2)

    def test_relu_is_bandwidth_kind(self):
        layer = setup_layer(ReLULayer("r"), (4, 16))
        wl = layer_workload(layer, "forward")
        assert wl.kind == "bandwidth"
        assert wl.bytes_moved == 2 * 4 * 16 * 4

    def test_bad_direction(self):
        layer = setup_layer(ReLULayer("r"), (4, 16))
        with pytest.raises(ValueError):
            layer_workload(layer, "sideways")

    def test_sw_plan_flops_agree_with_workload(self):
        # The SW26010 plan and the device-independent workload must count
        # the same arithmetic.
        layer = setup_layer(
            ConvolutionLayer("c", 64, 3, pad=1, rng=seeded_rng(0)), (8, 64, 14, 14)
        )
        wl = layer_workload(layer, "forward")
        plan_flops = layer.sw_forward_cost().flops
        cg_share = wl.flops / 4  # plans price the per-core-group quarter
        assert plan_flops == pytest.approx(cg_share, rel=0.01)


class TestDeviceModels:
    def test_gpu_conv_efficiency_shape(self):
        assert gpu_conv_eff(512, 512) > gpu_conv_eff(64, 64)
        assert gpu_conv_eff(256, 256, k=1) < gpu_conv_eff(256, 256, k=3)
        assert gpu_conv_eff(256, 256, spatial=500) < gpu_conv_eff(256, 256, spatial=1e6)

    def test_gpu_faster_than_cpu_on_conv(self):
        layer = setup_layer(
            ConvolutionLayer("c", 64, 3, pad=1, rng=seeded_rng(0)), (8, 64, 28, 28)
        )
        assert gpu_layer_time(layer, "forward") < cpu_layer_time(layer, "forward")

    def test_device_bandwidth_ordering_for_streaming(self):
        # Fig. 8/9's observation: bandwidth-bound layers are far cheaper on
        # the GPU's 288 GB/s than on SW26010's 28 GB/s per CG.
        layer = setup_layer(ReLULayer("r"), (64, 64, 56, 56))
        gpu = gpu_layer_time(layer, "forward")
        sw = layer.sw_forward_cost().total_s
        assert gpu < sw


class TestNetTiming:
    @pytest.fixture(scope="class")
    def net(self):
        return lenet.build(batch_size=8)

    def test_timings_cover_all_layers(self, net):
        timings = net_layer_timings(net, "sw26010")
        assert len(timings) == len(net.layers)
        assert all(t.forward_s >= 0 for t in timings)

    def test_iteration_time_is_sum(self, net):
        timings = net_layer_timings(net, "k40m")
        assert net_iteration_time(net, "k40m") == pytest.approx(
            sum(t.total_s for t in timings)
        )

    def test_throughput_inverse_of_time(self, net):
        t = net_iteration_time(net, "cpu")
        assert net_throughput(net, "cpu", 8) == pytest.approx(8 / t)

    def test_unknown_device(self, net):
        with pytest.raises(ValueError):
            net_layer_timings(net, "tpu")
