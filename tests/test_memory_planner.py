"""Tests for memory planning and gradient accumulation (iter_size)."""

import numpy as np
import pytest

from repro.frame.layers import DataLayer, InnerProductLayer, SoftmaxWithLossLayer
from repro.frame.model_zoo import lenet, vgg
from repro.frame.net import Net
from repro.frame.solver import SGDSolver
from repro.hw.spec import SW_PARAMS
from repro.io.dataset import SyntheticImageNet
from repro.perf.memory import MemoryFootprint, max_feasible_batch, net_memory_footprint
from repro.utils.rng import seeded_rng


class TestMemoryFootprint:
    def test_components_positive_and_total(self):
        net = lenet.build(batch_size=8)
        fp = net_memory_footprint(net)
        assert fp.params_bytes > 0
        assert fp.activation_bytes > 0
        assert fp.workspace_bytes > 0  # LeNet's 5x5 convs need im2col space
        assert fp.total_bytes == (
            fp.params_bytes + fp.solver_bytes + fp.activation_bytes + fp.workspace_bytes
        )

    def test_activations_scale_with_batch(self):
        small = net_memory_footprint(lenet.build(batch_size=8))
        big = net_memory_footprint(lenet.build(batch_size=32))
        assert big.activation_bytes == pytest.approx(4 * small.activation_bytes, rel=0.01)
        assert big.params_bytes == small.params_bytes

    def test_paper_vgg_batch_is_memory_limited(self):
        """Table III runs VGG-16 at batch 64: it fits the 8 GB core group,
        while 128 does not — the batch choice is a memory constraint."""
        at64 = net_memory_footprint(vgg.build_vgg16(batch_size=64))
        at128 = net_memory_footprint(vgg.build_vgg16(batch_size=128))
        assert at64.fits()
        assert not at128.fits()

    def test_fits_custom_capacity(self):
        fp = MemoryFootprint(1, 1, 1, 1)
        assert fp.fits(4)
        assert not fp.fits(3)

    def test_max_feasible_batch(self):
        best = max_feasible_batch(
            lenet.build, capacity_bytes=64 * 1024 * 1024, candidates=(16, 64, 256, 1024)
        )
        assert best in (16, 64, 256, 1024)
        # Tighter budget cannot allow a larger batch.
        tighter = max_feasible_batch(
            lenet.build, capacity_bytes=16 * 1024 * 1024, candidates=(16, 64, 256, 1024)
        )
        assert tighter <= best


class TestIterSize:
    def make_net(self):
        src = SyntheticImageNet(num_classes=3, sample_shape=(6,), noise=0.2, seed=21)
        net = Net("acc")
        net.add(DataLayer("data", src, 8), [], ["data", "label"])
        net.add(InnerProductLayer("ip", 3, rng=seeded_rng(22)), ["data"], ["logits"])
        net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
        return net

    def test_accumulation_averages_gradients(self):
        """iter_size=2 must equal manually averaging two passes' gradients."""
        net_a = self.make_net()
        solver_a = SGDSolver(net_a, base_lr=0.05, momentum=0.0, iter_size=2)
        solver_a.step(1)

        net_b = self.make_net()
        net_b.zero_param_diffs()
        for _ in range(2):
            net_b.forward()
            net_b.backward()
        for p in net_b.params:
            p.diff = p.diff / 2
        SGDSolver(net_b, base_lr=0.05, momentum=0.0).apply_update()

        for pa, pb in zip(net_a.params, net_b.params):
            np.testing.assert_allclose(pa.data, pb.data, rtol=1e-6)

    def test_iter_size_counts_once_per_update(self):
        net = self.make_net()
        solver = SGDSolver(net, base_lr=0.01, iter_size=3)
        stats = solver.step(4)
        assert stats.iterations == 4
        assert solver.iter == 4

    def test_simulated_time_counts_all_passes(self):
        plain = SGDSolver(self.make_net(), base_lr=0.01).step(2).simulated_time_s
        accum = SGDSolver(self.make_net(), base_lr=0.01, iter_size=3).step(2).simulated_time_s
        assert accum == pytest.approx(3 * plain, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGDSolver(self.make_net(), iter_size=0)
