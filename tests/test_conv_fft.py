"""Tests for the FFT convolution plan (the alternative the paper rejects)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.kernels import ExplicitConvPlan, ImplicitConvPlan
from repro.kernels.conv_fft import FFTConvPlan


class TestFunctional:
    @settings(max_examples=15, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=3),
        ni=st.integers(min_value=1, max_value=4),
        no=st.integers(min_value=1, max_value=4),
        hw=st.integers(min_value=4, max_value=9),
        k=st.integers(min_value=1, max_value=3),
        pad=st.integers(min_value=0, max_value=1),
    )
    def test_matches_direct_convolution(self, batch, ni, no, hw, k, pad):
        rng = np.random.default_rng(batch * 100 + hw)
        x = rng.normal(size=(batch, ni, hw, hw))
        w = rng.normal(size=(no, ni, k, k))
        b = rng.normal(size=no)
        fft = FFTConvPlan(batch, ni, no, hw, hw, k, 1, pad)
        direct = ExplicitConvPlan(batch, ni, no, hw, hw, k, 1, pad)
        np.testing.assert_allclose(
            fft.forward(x, w, b), direct.forward(x, w, b), rtol=1e-8, atol=1e-10
        )

    def test_stride_rejected(self):
        with pytest.raises(PlanError):
            FFTConvPlan(1, 4, 4, 8, 8, 3, stride=2)

    def test_fft_size_is_power_of_two(self):
        plan = FFTConvPlan(1, 3, 8, 27, 27, 5, pad=2)
        assert plan.fft_size & (plan.fft_size - 1) == 0
        assert plan.fft_size >= 27 + 4 + 4  # padded image + kernel - 1


class TestCostModel:
    @pytest.mark.parametrize(
        "ni,no,img",
        [(64, 64, 224), (128, 128, 112), (256, 256, 56), (512, 512, 14)],
    )
    def test_fft_loses_on_vgg_shapes(self, ni, no, img):
        """The paper's design decision: on SW26010's tiny LDM, the
        time-domain plans beat FFT for every VGG-16 layer shape."""
        batch = 128
        fft = FFTConvPlan(batch, ni, no, img, img, 3, 1, 1).cost_forward().total_s
        explicit = ExplicitConvPlan(batch, ni, no, img, img, 3, 1, 1).cost_forward().total_s
        implicit = ImplicitConvPlan(batch, ni, no, img, img, 3, 1, 1).cost_forward().total_s
        assert min(explicit, implicit) < fft

    def test_fft_relative_cost_shrinks_with_kernel_size(self):
        """FFT's asymptotic advantage: its cost is kernel-size independent,
        so very large kernels narrow the gap."""
        batch, c, img = 8, 64, 64

        def ratio(k):
            fft = FFTConvPlan(batch, c, c, img, img, k, 1, k // 2).cost_forward().total_s
            direct = ExplicitConvPlan(batch, c, c, img, img, k, 1, k // 2).cost_forward().total_s
            return fft / direct

        assert ratio(11) < ratio(3)

    def test_cost_positive(self):
        cost = FFTConvPlan(4, 16, 16, 28, 28, 3, 1, 1).cost()
        assert cost.total_s > 0
        assert cost.flops > 0
