"""Registry-driven layer gradient conformance.

One test per registered :class:`~repro.testing.gradcheck.LayerCase`
(parametrized by the conformance plugin): every input gradient and every
parameter gradient of every registered layer is checked against central
differences. Coverage that previously required a hand-written test per
layer (and silently missed LRN, Scale, Eltwise variants, Concat, LSTM)
now follows from registration.
"""

from repro.testing.gradcheck import LAYERS, check_layer, registered_layers

#: Layers the issue audit found without gradient coverage in the seed
#: test-suite; their presence in the registry is pinned so a refactor
#: cannot silently drop them again.
AUDIT_REQUIRED = {
    "lrn",
    "scale",
    "eltwise_sum",
    "eltwise_prod",
    "eltwise_max",
    "concat",
    "lstm",
}


def test_layer_gradients(layer_name):
    check_layer(layer_name)


def test_audited_layers_are_registered():
    missing = AUDIT_REQUIRED - set(registered_layers())
    assert not missing, f"audited layers missing from gradcheck registry: {missing}"


def test_registry_layers_have_distinct_factories():
    """Each case builds a working deterministic layer (fresh instances)."""
    for name in registered_layers():
        case = LAYERS[name]
        a, b = case.factory(), case.factory()
        assert a is not b
