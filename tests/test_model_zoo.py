"""Model zoo structure tests: shapes, parameter counts, paper model sizes."""

import numpy as np
import pytest

from repro.frame.model_zoo import PAPER_NETWORKS, alexnet, googlenet, lenet, resnet, vgg


def param_count(net):
    return sum(p.count for p in net.params)


class TestAlexNet:
    @pytest.fixture(scope="class")
    def net(self):
        return alexnet.build(batch_size=2)

    def test_parameter_count_near_published(self, net):
        # Ungrouped AlexNet has ~61M parameters; the paper quotes the model
        # payload as 232.6 MB.
        n = param_count(net)
        assert 55e6 < n < 66e6

    def test_model_bytes_match_paper_scale(self, net):
        mb = net.param_bytes() / 1e6
        assert 220 < mb < 260

    def test_conv_shapes(self, net):
        assert net.blobs["conv1"].shape == (2, 96, 55, 55)
        assert net.blobs["pool5"].shape == (2, 256, 6, 6)
        assert net.blobs["fc8"].shape == (2, 1000)

    def test_lrn_variant_builds(self):
        net = alexnet.build(batch_size=1, variant="lrn")
        assert any(l.type == "LRN" for l in net.layers)
        assert not any(l.type == "BatchNorm" for l in net.layers)


class TestVGG:
    @pytest.fixture(scope="class")
    def net16(self):
        return vgg.build_vgg16(batch_size=1)

    def test_vgg16_parameters(self, net16):
        n = param_count(net16)
        assert abs(n - 138.36e6) < 1.0e6

    def test_vgg16_conv_count(self, net16):
        convs = [l for l in net16.layers if l.type == "Convolution"]
        assert len(convs) == 13

    def test_vgg16_spatial_pipeline(self, net16):
        assert net16.blobs["conv1_2"].shape == (1, 64, 224, 224)
        assert net16.blobs["pool5"].shape == (1, 512, 7, 7)

    def test_vgg19_has_16_convs(self):
        net = vgg.build_vgg19(batch_size=1)
        convs = [l for l in net.layers if l.type == "Convolution"]
        assert len(convs) == 16

    def test_fc6_dominates_parameters(self, net16):
        # Sec. V-A contrasts the huge first fully-connected layer (the
        # paper quotes 102 MB for its configuration) with the 1.7 KB first
        # conv layer; in standard VGG-16 fc6 is 4096 x 25088 (~411 MB) and
        # conv1_1 is 64*3*3*3*4 B = 6.9 KB. The structural claim — fc6 is
        # the largest parameter by orders of magnitude — must hold.
        fc6 = net16.layer_by_name("fc6")
        conv1_1 = net16.layer_by_name("conv1_1")
        assert fc6.weight.nbytes > 100e6
        assert fc6.weight.nbytes == max(p.nbytes for p in net16.params)
        assert conv1_1.weight.nbytes < 10e3


class TestResNet50:
    @pytest.fixture(scope="class")
    def net(self):
        return resnet.build_resnet50(batch_size=1)

    def test_parameter_count(self, net):
        n = param_count(net)
        assert 24e6 < n < 27e6

    def test_model_bytes_match_paper(self, net):
        # Paper: ResNet-50 parameters are 97.7 MB.
        mb = net.param_bytes() / 1e6
        assert 95 < mb < 110

    def test_stage_output_shapes(self, net):
        assert net.blobs["res2c/relu"].shape == (1, 256, 56, 56)
        assert net.blobs["res3d/relu"].shape == (1, 512, 28, 28)
        assert net.blobs["res4f/relu"].shape == (1, 1024, 14, 14)
        assert net.blobs["res5c/relu"].shape == (1, 2048, 7, 7)
        assert net.blobs["pool5"].shape == (1, 2048, 1, 1)

    def test_block_count(self, net):
        adds = [l for l in net.layers if l.type == "Eltwise"]
        assert len(adds) == 16  # 3 + 4 + 6 + 3


class TestGoogLeNet:
    @pytest.fixture(scope="class")
    def net(self):
        return googlenet.build(batch_size=1)

    def test_parameter_count(self, net):
        n = param_count(net)
        assert 6.5e6 < n < 8.0e6

    def test_inception_output_channels(self, net):
        assert net.blobs["inception_3a/output"].shape[1] == 256
        assert net.blobs["inception_4e/output"].shape[1] == 832
        assert net.blobs["inception_5b/output"].shape[1] == 1024

    def test_concat_layers_present(self, net):
        concats = [l for l in net.layers if l.type == "Concat"]
        assert len(concats) == 9


class TestPaperNetworkTable:
    def test_registry_contains_all_five(self):
        assert set(PAPER_NETWORKS) == {
            "AlexNet", "VGG-16", "VGG-19", "ResNet-50", "GoogleNet",
        }

    def test_paper_batch_sizes(self):
        assert PAPER_NETWORKS["AlexNet"][1] == 256
        assert PAPER_NETWORKS["VGG-16"][1] == 64
        assert PAPER_NETWORKS["ResNet-50"][1] == 32
        assert PAPER_NETWORKS["GoogleNet"][1] == 128


class TestLeNetFunctional:
    def test_forward_backward_runs(self):
        net = lenet.build(batch_size=4)
        losses = net.forward()
        assert losses["loss"] > 0
        net.backward()
        conv1 = net.layer_by_name("conv1")
        assert float(np.abs(conv1.weight.diff).sum()) > 0
