"""Tests for Caffe prototxt compatibility."""

import numpy as np
import pytest

from repro.frame.prototxt import (
    PrototxtError,
    net_from_prototxt,
    parse_prototxt,
    prototxt_to_spec,
    solver_from_prototxt,
)
from repro.frame.solver import SGDSolver
from repro.frame.solvers_ext import AdamSolver, NesterovSolver
from repro.io.dataset import SyntheticImageNet
from repro.utils.rng import seeded_rng

LENET_PROTOTXT = """
name: "LeNet"
layer {
  name: "mnist"
  type: "Data"
  top: "data"
  top: "label"
  data_param { batch_size: 8 }
}
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param {
    num_output: 20
    kernel_size: 5
    stride: 1
    weight_filler { type: "xavier" }
  }
}
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "conv1"
  top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "ip1"
  type: "InnerProduct"
  bottom: "pool1"
  top: "ip1"
  inner_product_param { num_output: 50 }
}
layer {
  name: "relu1"
  type: "ReLU"
  bottom: "ip1"
  top: "relu1_out"   # in-place avoided: distinct top
}
layer {
  name: "ip2"
  type: "InnerProduct"
  bottom: "relu1_out"
  top: "ip2"
  inner_product_param { num_output: 10 }
}
layer {
  name: "loss"
  type: "SoftmaxWithLoss"
  bottom: "ip2"
  bottom: "label"
  top: "loss"
}
"""

SOLVER_PROTOTXT = """
# Caffe solver definition
base_lr: 0.05
momentum: 0.9
weight_decay: 0.0005
lr_policy: "step"
gamma: 0.5
stepsize: 10
max_iter: 100
type: "SGD"
"""


class TestParser:
    def test_scalars_and_strings(self):
        msg = parse_prototxt('name: "x" value: 3 rate: 0.5 flag: true mode: MAX')
        assert msg == {"name": "x", "value": 3, "rate": 0.5, "flag": True, "mode": "MAX"}

    def test_nested_blocks(self):
        msg = parse_prototxt("a { b { c: 1 } d: 2 }")
        assert msg == {"a": {"b": {"c": 1}, "d": 2}}

    def test_repeated_keys_become_lists(self):
        msg = parse_prototxt('top: "a" top: "b" top: "c"')
        assert msg == {"top": ["a", "b", "c"]}

    def test_comments_ignored(self):
        msg = parse_prototxt("# header\nx: 1 # trailing\ny: 2")
        assert msg == {"x": 1, "y": 2}

    def test_unbalanced_braces(self):
        with pytest.raises(PrototxtError):
            parse_prototxt("a { b: 1")
        with pytest.raises(PrototxtError):
            parse_prototxt("}")

    def test_dangling_key(self):
        with pytest.raises(PrototxtError):
            parse_prototxt("orphan")


class TestNetFromPrototxt:
    def source(self):
        return SyntheticImageNet(
            num_classes=10, sample_shape=(1, 20, 20), noise=0.2, seed=11
        )

    def test_spec_structure(self):
        spec = prototxt_to_spec(LENET_PROTOTXT)
        assert spec["name"] == "LeNet"
        types = [l["type"] for l in spec["layers"]]
        assert types == [
            "Data", "Convolution", "Pooling", "InnerProduct", "ReLU",
            "InnerProduct", "SoftmaxWithLoss",
        ]
        conv = spec["layers"][1]
        assert conv["params"]["num_output"] == 20
        assert conv["params"]["kernel_size"] == 5
        assert conv["params"]["weight_filler"] == "xavier"
        loss = spec["layers"][-1]
        assert loss["bottoms"] == ["ip2", "label"]

    def test_builds_and_trains(self):
        net = net_from_prototxt(LENET_PROTOTXT, source=self.source(), rng=seeded_rng(1))
        solver = SGDSolver(net, base_lr=0.01, momentum=0.9)
        stats = solver.step(15)
        assert stats.losses[-1] < stats.losses[0]

    def test_inplace_layer_rejected(self):
        bad = LENET_PROTOTXT.replace('top: "relu1_out"   # in-place avoided: distinct top', 'top: "ip1"')
        with pytest.raises(PrototxtError):
            prototxt_to_spec(bad)

    def test_unsupported_type_rejected(self):
        with pytest.raises(PrototxtError):
            prototxt_to_spec('layer { name: "x" type: "SPP" }')

    def test_no_layers_rejected(self):
        with pytest.raises(PrototxtError):
            prototxt_to_spec('name: "empty"')

    def test_pooling_ave_maps_to_avg(self):
        spec = prototxt_to_spec(
            'layer { name: "d" type: "Data" top: "data" top: "label" '
            "data_param { batch_size: 4 } }"
            'layer { name: "p" type: "Pooling" bottom: "data" top: "p" '
            "pooling_param { pool: AVE kernel_size: 3 } }"
        )
        assert spec["layers"][1]["params"]["mode"] == "avg"

    def test_loss_weight_passes_through(self):
        spec = prototxt_to_spec(
            'layer { name: "d" type: "Data" top: "data" top: "label" '
            "data_param { batch_size: 4 } }"
            'layer { name: "ip" type: "InnerProduct" bottom: "data" top: "ip" '
            "inner_product_param { num_output: 3 } }"
            'layer { name: "loss" type: "SoftmaxWithLoss" bottom: "ip" '
            'bottom: "label" top: "loss" loss_weight: 0.3 }'
        )
        assert spec["layers"][-1]["loss_weight"] == pytest.approx(0.3)
        src = SyntheticImageNet(num_classes=3, sample_shape=(5,), seed=0)
        from repro.frame.netspec import build_from_spec

        net = build_from_spec(spec, source=src)
        assert net.layer_by_name("loss").loss_weight == pytest.approx(0.3)

    def test_slice_layer_mapped(self):
        spec = prototxt_to_spec(
            'layer { name: "d" type: "Data" top: "data" top: "label" '
            "data_param { batch_size: 4 } }"
            'layer { name: "sl" type: "Slice" bottom: "data" top: "a" top: "b" '
            "slice_param { slice_point: 2 axis: 1 } }"
        )
        assert spec["layers"][1]["params"]["slice_points"] == [2]
        assert spec["layers"][1]["tops"] == ["a", "b"]

    def test_grouped_convolution_mapped(self):
        spec = prototxt_to_spec(
            'layer { name: "d" type: "Data" top: "data" top: "label" '
            "data_param { batch_size: 4 } }"
            'layer { name: "c" type: "Convolution" bottom: "data" top: "c" '
            "convolution_param { num_output: 8 kernel_size: 3 group: 2 } }"
        )
        assert spec["layers"][1]["params"]["groups"] == 2


class TestSolverFromPrototxt:
    def net(self):
        return net_from_prototxt(
            LENET_PROTOTXT,
            source=SyntheticImageNet(num_classes=10, sample_shape=(1, 20, 20), seed=1),
        )

    def test_sgd_with_step_policy(self):
        solver = solver_from_prototxt(SOLVER_PROTOTXT, self.net())
        assert isinstance(solver, SGDSolver)
        assert solver.base_lr == pytest.approx(0.05)
        assert solver.momentum == pytest.approx(0.9)
        assert solver.learning_rate(10) == pytest.approx(0.025)

    def test_solver_type_dispatch(self):
        nesterov = solver_from_prototxt('type: "Nesterov" base_lr: 0.1', self.net())
        assert isinstance(nesterov, NesterovSolver)
        adam = solver_from_prototxt('type: "Adam" base_lr: 0.001', self.net())
        assert isinstance(adam, AdamSolver)

    def test_multistep_values(self):
        solver = solver_from_prototxt(
            'base_lr: 1.0 lr_policy: "multistep" gamma: 0.1 '
            "stepvalue: 5 stepvalue: 9",
            self.net(),
        )
        assert solver.steps == [5, 9]
        assert solver.learning_rate(9) == pytest.approx(0.01)

    def test_unknown_type_rejected(self):
        with pytest.raises(PrototxtError):
            solver_from_prototxt('type: "LBFGS"', self.net())
