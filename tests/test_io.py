"""Tests for the parallel I/O models and the synthetic dataset (Sec. V-B)."""

import numpy as np
import pytest

from repro.io import DiskArrayModel, PrefetchPipeline, StripingPolicy, SyntheticImageNet
from repro.utils.units import MB


class TestStripingPolicy:
    def test_swcaffe_policy_is_32x256mb(self):
        p = StripingPolicy.swcaffe()
        assert p.n_stripes == 32
        assert p.stripe_bytes == 256 * MB

    def test_single_split(self):
        p = StripingPolicy.single_split()
        assert p.n_stripes == 1


class TestDiskArrayModel:
    def test_striped_beats_single_split_at_scale(self):
        # The paper's headline I/O claim: with many concurrent readers the
        # single-split layout collapses onto one array.
        disk = DiskArrayModel()
        batch = 192 * MB  # 256 ImageNet records
        single = disk.read_time(1024, batch, StripingPolicy.single_split())
        striped = disk.read_time(1024, batch, StripingPolicy.swcaffe())
        assert striped < single / 10

    def test_single_process_similar_under_both(self):
        disk = DiskArrayModel()
        batch = 192 * MB
        single = disk.read_time(1, batch, StripingPolicy.single_split())
        striped = disk.read_time(1, batch, StripingPolicy.swcaffe())
        assert striped <= single
        assert striped > 0.3 * single

    def test_192mb_batch_touches_at_most_two_arrays(self):
        # Sec. V-B: "a single process can access at most two disk arrays".
        disk = DiskArrayModel()
        spans = disk.arrays_touched_per_process(StripingPolicy.swcaffe(), 192 * MB)
        assert spans <= 2

    def test_read_time_monotone_in_processes(self):
        disk = DiskArrayModel()
        batch = 192 * MB
        times = [
            disk.read_time(n, batch, StripingPolicy.swcaffe())
            for n in (32, 128, 512, 2048)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(times, times[1:]))

    def test_link_bandwidth_floor(self):
        disk = DiskArrayModel(link_bandwidth=1e9)
        t = disk.read_time(1, 1e9, StripingPolicy.swcaffe())
        assert t >= 1.0

    def test_zero_bytes_free(self):
        assert DiskArrayModel().read_time(10, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskArrayModel(n_arrays=0)
        with pytest.raises(ValueError):
            DiskArrayModel().read_time(0, 100)

    def test_aggregate_bandwidth_scales_with_stripes(self):
        disk = DiskArrayModel()
        batch = 192 * MB
        bw_single = disk.aggregate_bandwidth(256, batch, StripingPolicy.single_split())
        bw_striped = disk.aggregate_bandwidth(256, batch, StripingPolicy.swcaffe())
        assert bw_striped > 10 * bw_single


class TestPrefetchPipeline:
    def test_overlap_hides_io_when_compute_dominates(self):
        pipe = PrefetchPipeline(DiskArrayModel(), StripingPolicy.swcaffe())
        t = pipe.iteration_io_time(64, 192 * MB, compute_time=100.0)
        assert t == 0.0

    def test_io_exposed_when_read_dominates(self):
        pipe = PrefetchPipeline(DiskArrayModel(), StripingPolicy.single_split())
        t_read = pipe.read_time(2048, 192 * MB)
        exposed = pipe.iteration_io_time(2048, 192 * MB, compute_time=1.0)
        assert exposed == pytest.approx(t_read - 1.0)
        assert pipe.is_io_bound(2048, 192 * MB, compute_time=1.0)

    def test_disabled_pipeline_serializes(self):
        pipe = PrefetchPipeline(DiskArrayModel(), StripingPolicy.swcaffe(), enabled=False)
        t_read = pipe.read_time(8, 192 * MB)
        assert pipe.iteration_io_time(8, 192 * MB, compute_time=100.0) == pytest.approx(t_read)

    def test_negative_compute_rejected(self):
        pipe = PrefetchPipeline(DiskArrayModel(), StripingPolicy.swcaffe())
        with pytest.raises(ValueError):
            pipe.iteration_io_time(8, 1e6, compute_time=-1.0)


class TestSyntheticImageNet:
    def test_shapes_and_dtypes(self):
        src = SyntheticImageNet(num_classes=10, sample_shape=(3, 8, 8), seed=1)
        images, labels = src.next_batch(5)
        assert images.shape == (5, 3, 8, 8)
        assert images.dtype == np.float32
        assert labels.shape == (5,)
        assert labels.dtype == np.int64
        assert labels.min() >= 0 and labels.max() < 10

    def test_deterministic_replay(self):
        a = SyntheticImageNet(num_classes=5, sample_shape=(4,), seed=3)
        b = SyntheticImageNet(num_classes=5, sample_shape=(4,), seed=3)
        ia, la = a.next_batch(8)
        ib, lb = b.next_batch(8)
        np.testing.assert_array_equal(ia, ib)
        np.testing.assert_array_equal(la, lb)

    def test_label_correlation(self):
        # Samples of the same class must be closer to their prototype than
        # to other prototypes (what makes the dataset learnable).
        src = SyntheticImageNet(num_classes=4, sample_shape=(32,), noise=0.3, seed=2)
        images, labels = src.next_batch(64)
        protos = np.stack([src.prototype(c) for c in range(4)])
        dists = ((images[:, None, :] - protos[None]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(dists.argmin(axis=1), labels)

    def test_prototypes_stable(self):
        src = SyntheticImageNet(num_classes=3, sample_shape=(6,), seed=4)
        p1 = src.prototype(2).copy()
        src.next_batch(10)
        np.testing.assert_array_equal(src.prototype(2), p1)

    def test_batch_bytes_matches_paper_scale(self):
        # 256 records at the default size ~ 192 MB (Sec. V-B).
        src = SyntheticImageNet()
        assert src.batch_bytes(256) == pytest.approx(192e6, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticImageNet(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticImageNet(noise=-1)
        src = SyntheticImageNet(num_classes=3, sample_shape=(2,))
        with pytest.raises(ValueError):
            src.prototype(3)
        with pytest.raises(ValueError):
            src.next_batch(0)
