"""The CLI help is generated from the command registry — and stays so.

``python -m repro --help`` used to be a hand-written string; commands
(``chaos``, ``metrics``) had to be added twice and could drift. Now
:data:`repro.__main__.REGISTRY` is the single source of truth and these
tests pin the contract: every registered command appears in the help, the
help lists nothing unregistered, and dispatch agrees with both.
"""

from __future__ import annotations

import re

import pytest

from repro.__main__ import COMMANDS, REGISTRY, _usage, main

#: A command line in the generated help: two-space indent, then the name.
_HELP_COMMAND_RE = re.compile(r"^  (\w[\w-]*)", re.MULTILINE)


def help_commands() -> set[str]:
    body = _usage().split("commands:", 1)[1]
    return set(_HELP_COMMAND_RE.findall(body))


class TestHelpEqualsRegistry:
    def test_help_lists_exactly_the_registered_commands(self):
        assert help_commands() == set(REGISTRY)

    def test_dispatch_table_is_a_view_of_the_registry(self):
        assert set(COMMANDS) == set(REGISTRY)
        for name, cmd in REGISTRY.items():
            assert COMMANDS[name] is cmd.handler
            assert cmd.name == name
            assert cmd.usage[0].split()[0] == name
            assert cmd.help  # every command explains itself

    def test_serve_is_registered(self):
        assert "serve" in REGISTRY
        assert "serve" in help_commands()

    def test_help_output_goes_through_the_generator(self, capsys):
        assert main(["--help"]) == 0
        assert capsys.readouterr().out == _usage() + "\n"


class TestPipelineCommand:
    def test_pipeline_is_registered(self):
        assert "pipeline" in REGISTRY
        assert "pipeline" in help_commands()

    def test_generated_help_pins_the_usage(self):
        """The pipeline usage lines are registry-generated; pin them so
        the help cannot drift from the parser."""
        cmd = REGISTRY["pipeline"]
        assert cmd.usage[0] == (
            "pipeline NET [--stages S] [--microbatches M] [--replicas R]"
        )
        for fragment in ("--schedule", "--method", "--batch", "--bucket-mb",
                         "--trace"):
            assert any(fragment in line for line in cmd.usage)
        assert "docs/parallelism.md" in " ".join(cmd.help)
        usage_text = _usage()
        for line in cmd.usage:
            assert line in usage_text

    @pytest.mark.parametrize(
        "flag,value", [("--stages", "0"), ("--stages", "-2"),
                       ("--microbatches", "0"), ("--microbatches", "-3"),
                       ("--replicas", "0")]
    )
    def test_invalid_counts_exit_2(self, capsys, flag, value):
        assert main(["pipeline", "lenet", flag, value]) == 2
        assert flag.lstrip("-") in capsys.readouterr().err

    def test_too_many_stages_exits_2(self, capsys):
        assert main(["pipeline", "lenet", "--stages", "999"]) == 2
        assert "stages" in capsys.readouterr().err

    def test_unknown_net_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["pipeline", "nosuchnet"])
        assert exc.value.code == 2

    def test_runs_and_reports_on_lenet(self, capsys):
        assert main(["pipeline", "lenet", "--stages", "2",
                     "--microbatches", "4", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "bubble" in out
        assert "stage" in out

    def test_trace_export_is_valid_chrome(self, tmp_path, capsys):
        import json

        from repro.trace import validate_chrome

        path = tmp_path / "pipe.json"
        assert main(["pipeline", "lenet", "--stages", "2",
                     "--microbatches", "2", "--batch", "4",
                     "--trace", str(path)]) == 0
        assert validate_chrome(json.loads(path.read_text())) == []


class TestServeArgs:
    def test_malformed_arrival_seed_exits_2(self, capsys):
        assert main(["serve", "lenet", "--arrivals", "nope"]) == 2
        assert "malformed arrival seed" in capsys.readouterr().err

    def test_unknown_profile_exits_2(self, capsys):
        assert main(["serve", "lenet", "--arrivals", "tsunami:0x1:0"]) == 2

    def test_malformed_fault_seed_exits_2(self, capsys):
        assert (
            main(["serve", "lenet", "--faults", "not-a-seed"]) == 2
        )

    def test_invalid_batching_knobs_exit_2(self, capsys):
        assert main(["serve", "lenet", "--max-batch", "0"]) == 2
        assert "max_batch" in capsys.readouterr().err

    def test_unknown_net_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "nosuchnet"])
        assert exc.value.code == 2
