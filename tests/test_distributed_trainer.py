"""Tests for the functional distributed SSGD trainer.

The decisive property: data-parallel training with a real allreduce is
*exactly* equivalent to single-process training on the concatenated batch,
and replicas never diverge.
"""

import numpy as np
import pytest

from repro.frame.net import Net
from repro.frame.layers import DataLayer, InnerProductLayer, ReLULayer, SoftmaxWithLossLayer
from repro.frame.solver import SGDSolver
from repro.io.dataset import SyntheticImageNet
from repro.parallel import DistributedTrainer
from repro.utils.rng import seeded_rng


class ShardSource:
    """Deterministic source handing each worker a fixed shard per step."""

    def __init__(self, batches):
        self.batches = list(batches)
        self.i = 0
        self.sample_shape = batches[0][0].shape[1:]

    def next_batch(self, batch_size):
        images, labels = self.batches[self.i % len(self.batches)]
        self.i += 1
        assert images.shape[0] == batch_size
        return images, labels


def make_batches(n_steps, n_workers, per_worker, dim, classes, seed=0):
    """Pre-generate shard data so workers and the reference see the same
    samples."""
    rng = np.random.default_rng(seed)
    all_steps = []
    for _ in range(n_steps):
        images = rng.normal(size=(n_workers * per_worker, dim)).astype(np.float32)
        labels = rng.integers(0, classes, size=n_workers * per_worker)
        all_steps.append((images, labels))
    return all_steps


def build_net(source, batch, classes, hidden=6):
    net = Net("mlp")
    net.add(DataLayer("data", source, batch), bottoms=[], tops=["data", "label"])
    net.add(InnerProductLayer("ip1", hidden, rng=seeded_rng(11)), ["data"], ["h"])
    net.add(ReLULayer("relu"), ["h"], ["a"])
    net.add(InnerProductLayer("ip2", classes, rng=seeded_rng(12)), ["a"], ["logits"])
    net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
    return net


@pytest.mark.parametrize("algorithm", ["ring", "rhd", "topo-aware"])
def test_distributed_equals_single_process(algorithm):
    n_workers, per_worker, dim, classes, steps = 4, 3, 5, 3, 4
    data = make_batches(steps, n_workers, per_worker, dim, classes)

    # Distributed: worker r gets rows [r*pw, (r+1)*pw) of each step.
    def shard(rank):
        return ShardSource(
            [
                (img[rank * per_worker : (rank + 1) * per_worker],
                 lab[rank * per_worker : (rank + 1) * per_worker])
                for img, lab in data
            ]
        )

    trainer = DistributedTrainer(
        net_factory=lambda rank: build_net(shard(rank), per_worker, classes),
        n_workers=n_workers,
        algorithm=algorithm,
        base_lr=0.05,
        momentum=0.9,
    )
    trainer.step(steps)
    assert trainer.replicas_in_sync(atol=1e-6)

    # Reference: one process on the full batch.
    ref_net = build_net(ShardSource(data), n_workers * per_worker, classes)
    ref_solver = SGDSolver(ref_net, base_lr=0.05, momentum=0.9)
    ref_solver.step(steps)

    # The distributed gradient is the average over workers of per-shard
    # means == the full-batch mean, so parameters must match.
    ref_params = [p.data for p in ref_net.params]
    dist_params = [p.data for p in trainer.nets[0].params]
    for rp, dp in zip(ref_params, dist_params):
        np.testing.assert_allclose(dp, rp, rtol=1e-4, atol=1e-6)


def test_loss_decreases_under_distributed_training():
    classes = 4
    src_seed = 5

    def factory(rank):
        src = SyntheticImageNet(
            num_classes=classes, sample_shape=(8,), noise=0.2, seed=src_seed + rank
        )
        return build_net(src, 8, classes, hidden=12)

    trainer = DistributedTrainer(factory, n_workers=2, base_lr=0.05)
    stats = trainer.step(30)
    assert np.mean(stats.losses[-5:]) < np.mean(stats.losses[:5])
    assert trainer.replicas_in_sync(atol=1e-6)
    assert stats.comm_time_s > 0


def test_invalid_configuration():
    with pytest.raises(ValueError):
        DistributedTrainer(lambda r: None, n_workers=0)
    with pytest.raises(ValueError):
        DistributedTrainer(lambda r: None, n_workers=2, algorithm="gossip")


class TestBucketedTrainer:
    def trainer(self, **kw):
        n_workers, per_worker, dim, classes, steps = 4, 3, 5, 3, 4
        data = make_batches(steps, n_workers, per_worker, dim, classes)

        def shard(rank):
            return ShardSource(
                [
                    (img[rank * per_worker : (rank + 1) * per_worker],
                     lab[rank * per_worker : (rank + 1) * per_worker])
                    for img, lab in data
                ]
            )

        return DistributedTrainer(
            net_factory=lambda rank: build_net(shard(rank), per_worker, classes),
            n_workers=n_workers,
            algorithm="rhd",
            **kw,
        )

    def test_backward_window_hides_comm(self):
        t = self.trainer(bucket_mb=1e-4, backward_s=2.0)
        stats = t.step(3)
        assert t.packers[0].n_buckets > 1
        assert stats.comm_hidden_s > 0
        assert stats.comm_hidden_s <= stats.comm_time_s

    def test_zero_backward_window_hides_nothing(self):
        # backward_s=0: every launch is ready at the barrier, all exposed.
        stats = self.trainer(bucket_mb=1e-4).step(3)
        assert stats.comm_hidden_s == 0.0

    def test_fused_path_reports_no_hidden_time(self):
        stats = self.trainer().step(3)
        assert stats.comm_hidden_s == 0.0

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            self.trainer(bucket_mb=0.0)
        with pytest.raises(ValueError):
            self.trainer(backward_s=-1.0)
