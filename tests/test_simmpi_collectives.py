"""Tests for the simulated allreduce family.

Two pillars:

1. *Functional correctness* — every algorithm must leave every rank holding
   the exact elementwise sum (or mean) of all input buffers, for any rank
   count and vector length (hypothesis-driven).
2. *Cost-model fidelity* — simulated times over a LinearCostModel must
   match the paper's closed forms (Eqs. 2-6) to machine precision for
   power-of-two configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simmpi import (
    SimComm,
    binomial_allreduce,
    block_placement,
    ring_allreduce,
    rhd_allreduce,
    round_robin_placement,
    topo_aware_allreduce,
)
from repro.simmpi.collectives import (
    improved_allreduce_cost,
    original_allreduce_cost,
    ring_allreduce_cost,
)
from repro.simmpi.comm import reduce_gamma
from repro.topology import LinearCostModel, TaihuLightFabric

MODEL = LinearCostModel(alpha=1e-6, beta1=1e-10, beta2=4e-10, gamma=3e-10)

ALGOS = [ring_allreduce, binomial_allreduce, rhd_allreduce, topo_aware_allreduce]


def make_comm(p, q=4, placement="block", cost=MODEL):
    fab = TaihuLightFabric(n_nodes=max(p, q), nodes_per_supernode=q)
    if placement == "block":
        pl = block_placement(p, min(q, p) if p % min(q, p) == 0 else 1)
    else:
        pl = round_robin_placement(p, min(q, p) if p % min(q, p) == 0 else 1)
    return SimComm(fab, pl, cost=cost)


def random_buffers(p, n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=n) for _ in range(p)]


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8, 12, 16])
    def test_sum_matches_numpy(self, algo, p):
        n = 37
        bufs = random_buffers(p, n, seed=p)
        expected = np.sum(bufs, axis=0)
        comm = make_comm(p)
        algo(comm, bufs)
        for b in bufs:
            np.testing.assert_allclose(b, expected, rtol=1e-12)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_average(self, algo):
        p, n = 8, 64
        bufs = random_buffers(p, n)
        expected = np.mean(bufs, axis=0)
        algo(make_comm(p), bufs, average=True)
        for b in bufs:
            np.testing.assert_allclose(b, expected, rtol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        p=st.integers(min_value=1, max_value=13),
        n=st.integers(min_value=1, max_value=200),
        algo_idx=st.integers(min_value=0, max_value=len(ALGOS) - 1),
    )
    def test_property_sum(self, p, n, algo_idx):
        bufs = random_buffers(p, n, seed=p * 1000 + n)
        expected = np.sum(bufs, axis=0)
        ALGOS[algo_idx](make_comm(p), bufs)
        for b in bufs:
            np.testing.assert_allclose(b, expected, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_multidimensional_buffers(self, algo):
        p = 4
        rng = np.random.default_rng(1)
        bufs = [rng.normal(size=(3, 5, 2)) for _ in range(p)]
        expected = np.sum(bufs, axis=0)
        algo(make_comm(p), bufs)
        for b in bufs:
            assert b.shape == (3, 5, 2)
            np.testing.assert_allclose(b, expected, rtol=1e-12)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_float32_buffers(self, algo):
        p = 4
        rng = np.random.default_rng(2)
        bufs = [rng.normal(size=50).astype(np.float32) for _ in range(p)]
        expected = np.sum([b.astype(np.float64) for b in bufs], axis=0)
        algo(make_comm(p), bufs)
        for b in bufs:
            assert b.dtype == np.float32
            np.testing.assert_allclose(b, expected, rtol=1e-5)

    def test_mismatched_buffer_count(self):
        comm = make_comm(4)
        with pytest.raises(ValueError):
            rhd_allreduce(comm, random_buffers(3, 8))


class TestCostModelFidelity:
    """Simulated step accounting must reproduce Eqs. 2-6 exactly."""

    @pytest.mark.parametrize("p,q", [(8, 4), (16, 4), (16, 8), (64, 16), (4, 4), (8, 8)])
    def test_rhd_block_matches_eq_3_4(self, p, q):
        n_elems = p * 16  # divisible by p so all halving splits are even
        nbytes = n_elems * 8
        comm = make_comm(p, q=q, placement="block")
        result = rhd_allreduce(comm, random_buffers(p, n_elems))
        expected = original_allreduce_cost(nbytes, p, q, MODEL)
        assert result.time_s == pytest.approx(expected, rel=1e-12)

    @pytest.mark.parametrize("p,q", [(8, 4), (16, 4), (16, 8), (64, 16), (8, 8)])
    def test_rhd_round_robin_matches_eq_5_6(self, p, q):
        n_elems = p * 16
        nbytes = n_elems * 8
        comm = make_comm(p, q=q, placement="round-robin")
        result = rhd_allreduce(comm, random_buffers(p, n_elems))
        expected = improved_allreduce_cost(nbytes, p, q, MODEL)
        assert result.time_s == pytest.approx(expected, rel=1e-12)

    def test_improved_beats_original_when_multi_supernode(self):
        p, q, nbytes = 64, 16, 1 << 20
        orig = original_allreduce_cost(nbytes, p, q, MODEL)
        impr = improved_allreduce_cost(nbytes, p, q, MODEL)
        assert impr < orig

    def test_schemes_coincide_single_supernode(self):
        p, nbytes = 16, 1 << 20
        orig = original_allreduce_cost(nbytes, p, 16, MODEL)
        impr = improved_allreduce_cost(nbytes, p, 16, MODEL)
        assert impr == pytest.approx(orig)

    def test_fig7_example_costs(self):
        """Fig. 7: p=8, q=4 closed forms.

        Original: 6a + 7/8 n gamma + 3/4 n b1 + n b2.
        Improved: 6a + 7/8 n gamma + 3/2 n b1 + 1/4 n b2.
        """
        n = 8 * 1024.0
        a, b1, b2, g = MODEL.alpha, MODEL.beta1, MODEL.beta2, MODEL.gamma
        orig = original_allreduce_cost(n, 8, 4, MODEL)
        impr = improved_allreduce_cost(n, 8, 4, MODEL)
        assert orig == pytest.approx(6 * a + 7 / 8 * n * g + 3 / 4 * n * b1 + n * b2)
        assert impr == pytest.approx(6 * a + 7 / 8 * n * g + 3 / 2 * n * b1 + 1 / 4 * n * b2)

    def test_ring_latency_term(self):
        p = 8
        n_elems = p * 4
        comm = make_comm(p, q=8, placement="block")
        result = ring_allreduce(comm, random_buffers(p, n_elems))
        assert result.alpha_count == 2 * (p - 1)
        expected = ring_allreduce_cost(n_elems * 8, p, 8, MODEL)
        assert result.time_s == pytest.approx(expected, rel=1e-12)

    def test_rhd_has_log_latency(self):
        p = 16
        comm = make_comm(p, q=16)
        result = rhd_allreduce(comm, random_buffers(p, p * 4))
        assert result.alpha_count == 2 * 4  # 2 log2(16)

    def test_cross_traffic_reduced_by_reordering(self):
        p, q = 64, 8
        n_elems = p * 8
        block = rhd_allreduce(
            make_comm(p, q=q, placement="block"), random_buffers(p, n_elems)
        )
        rr = rhd_allreduce(
            make_comm(p, q=q, placement="round-robin"), random_buffers(p, n_elems)
        )
        assert rr.bytes_cross < block.bytes_cross
        assert rr.time_s < block.time_s
        # total traffic is conserved
        assert rr.bytes_cross + rr.bytes_intra == pytest.approx(
            block.bytes_cross + block.bytes_intra
        )

    def test_topo_aware_entry_point_renumbers(self):
        p, q = 32, 8
        n_elems = p * 8
        comm_block = make_comm(p, q=q, placement="block")
        res_topo = topo_aware_allreduce(comm_block, random_buffers(p, n_elems))
        res_block = rhd_allreduce(
            make_comm(p, q=q, placement="block"), random_buffers(p, n_elems)
        )
        assert res_topo.time_s < res_block.time_s


class TestPlacements:
    @pytest.mark.parametrize("p,q", [(8, 4), (16, 4), (256, 256), (1024, 256)])
    def test_round_robin_is_permutation(self, p, q):
        pl = round_robin_placement(p, q)
        assert sorted(pl.physical) == list(range(p))

    def test_round_robin_example_from_paper(self):
        # 4 supernodes: logical ranks 0,4,8,... live in supernode 0.
        p, q = 16, 4
        pl = round_robin_placement(p, q)
        for L in range(p):
            assert pl.node_of(L) // q == L % (p // q)

    def test_block_is_identity(self):
        pl = block_placement(8, 4)
        assert pl.physical == tuple(range(8))

    def test_inverse(self):
        pl = round_robin_placement(16, 4)
        inv = pl.inverse()
        for L in range(16):
            assert inv[pl.node_of(L)] == L

    def test_indivisible_rejected(self):
        from repro.errors import CommunicatorError

        with pytest.raises(CommunicatorError):
            round_robin_placement(10, 4)


class TestReduceGamma:
    def test_cpe_faster_than_mpe(self):
        assert reduce_gamma("cpe") < reduce_gamma("mpe")

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            reduce_gamma("gpu")


class TestIAllreduceQueue:
    """Nonblocking launch queue: exact data, scheduled time."""

    def make_queue(self, p=4):
        from repro.simmpi import IAllreduceQueue

        comm = make_comm(p)
        return comm, IAllreduceQueue(comm, rhd_allreduce, origin_s=0.0)

    def test_data_reduced_immediately_and_exactly(self):
        comm, queue = self.make_queue(4)
        rng = np.random.default_rng(7)
        inputs = [rng.normal(size=33) for _ in range(4)]
        expected = [b.copy() for b in inputs]
        rhd_allreduce(make_comm(4), expected, average=True)
        req = queue.iallreduce([b.copy() for b in inputs], average=True)
        for got, want in zip(req.buffers, expected):
            assert np.array_equal(got, want)

    def test_serial_fabric_schedule(self):
        comm, queue = self.make_queue(4)
        bufs = lambda: [np.ones(1000) for _ in range(4)]
        a = queue.iallreduce(bufs(), ready_s=0.0)
        b = queue.iallreduce(bufs(), ready_s=0.0)  # queued behind a
        c = queue.iallreduce(bufs(), ready_s=a.end_s + b.comm_s + 5.0)  # idle gap
        assert a.start_s == 0.0
        assert b.start_s == a.end_s
        assert c.start_s == c.ready_s  # fabric was free, starts when ready
        assert queue.free_s == c.end_s

    def test_hidden_before_barrier_accounting(self):
        comm, queue = self.make_queue(4)
        bufs = [np.ones(1000) for _ in range(4)]
        req = queue.iallreduce(bufs, ready_s=0.0)
        mid = req.start_s + req.comm_s / 2
        assert req.hidden_before(mid) == pytest.approx(req.comm_s / 2)
        assert req.hidden_before(req.end_s + 1) == pytest.approx(req.comm_s)
        assert req.hidden_before(req.start_s) == 0.0

    def test_fully_hidden_request_exposes_exactly_zero(self):
        # start=0.1, comm=0.2: end_s - start_s lands one ulp above comm_s,
        # which made `comm_s - hidden` negative and tripped the metrics
        # counter's >= 0 check. Hidden must clamp to exactly comm_s.
        from repro.simmpi import PendingCollective

        req = PendingCollective(tag="b0", ready_s=0.1, start_s=0.1, comm_s=0.2)
        assert req.hidden_before(1.0) == req.comm_s
        assert req.comm_s - req.hidden_before(1.0) == 0.0

    def test_wait_all_drains_in_launch_order(self):
        comm, queue = self.make_queue(2)
        tags = []
        for i in range(3):
            queue.iallreduce([np.ones(8), np.ones(8)], tag=f"b{i}")
        done = queue.wait_all(barrier_s=queue.free_s)
        assert [r.tag for r in done] == ["b0", "b1", "b2"]
        assert all(r.done for r in done)
        assert queue.pending == []

    def test_discard_drops_pending(self):
        comm, queue = self.make_queue(2)
        queue.iallreduce([np.ones(8), np.ones(8)])
        dropped = queue.discard()
        assert len(dropped) == 1 and queue.pending == []
        assert queue.wait_all() == []

    def test_overlap_spans_and_metrics_emitted(self):
        from repro.metrics.registry import collecting
        from repro.trace.tracer import Tracer, tracing

        tracer = Tracer()
        with tracing(tracer), collecting() as mx:
            comm, queue = self.make_queue(4)
            queue.iallreduce([np.ones(4096) for _ in range(4)], ready_s=0.0)
            queue.wait_all(barrier_s=1e9)  # everything hidden
        cats = {s.cat for s in tracer.spans}
        assert "collective_launch" in cats
        assert "overlap_window" in cats
        assert mx.value("comm.bucket_launches") == 1
        assert mx.value("comm.overlap_hidden_s") > 0
        assert mx.value("comm.overlap_exposed_s") == 0
