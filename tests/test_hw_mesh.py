"""Tests for RLC, CPE, MPE, CoreGroup and SW26010 processor models."""

import pytest

from repro.hw import CPE, MPE, CoreGroup, RegisterComm, SimClock, SW26010, SW_PARAMS


class TestRegisterComm:
    def test_row_and_column_pairs_legal(self):
        rlc = RegisterComm()
        rlc.validate_pair((2, 0), (2, 7))  # same row
        rlc.validate_pair((0, 3), (7, 3))  # same column

    def test_diagonal_pair_rejected(self):
        rlc = RegisterComm()
        with pytest.raises(ValueError):
            rlc.validate_pair((0, 0), (1, 1))

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            RegisterComm().validate_pair((3, 3), (3, 3))

    def test_out_of_mesh_rejected(self):
        with pytest.raises(ValueError):
            RegisterComm().validate_pair((0, 0), (0, 8))

    def test_broadcast_faster_than_p2p(self):
        # Paper [7]: 4461 GB/s broadcast vs 2549 GB/s P2P aggregate.
        rlc = RegisterComm()
        n = 1 << 20
        assert rlc.broadcast_time(n) < rlc.p2p_time(n)

    def test_word_granularity_is_256_bits(self):
        assert RegisterComm().word_bytes == 32

    def test_charge_advances_clock(self):
        clock = SimClock()
        rlc = RegisterComm(clock=clock)
        rlc.charge_broadcast(1024)
        rlc.charge_p2p(1024)
        assert clock.category_total("rlc") == pytest.approx(clock.now)
        assert clock.now > 0

    def test_zero_bytes_free(self):
        assert RegisterComm().p2p_time(0) == 0.0


class TestCPE:
    def test_peak_is_64th_of_cluster(self):
        cpe = CPE(row=0, col=0)
        assert cpe.peak_flops == pytest.approx(742.4e9 / 64)

    def test_compute_time(self):
        cpe = CPE(row=1, col=2)
        assert cpe.compute_time(cpe.peak_flops) == pytest.approx(1.0)
        assert cpe.compute_time(cpe.peak_flops, efficiency=0.5) == pytest.approx(2.0)

    def test_invalid_efficiency(self):
        cpe = CPE(row=0, col=0)
        with pytest.raises(ValueError):
            cpe.compute_time(1.0, efficiency=0.0)
        with pytest.raises(ValueError):
            cpe.compute_time(-1.0)

    def test_position_validated(self):
        with pytest.raises(ValueError):
            CPE(row=8, col=0)

    def test_simd_efficiency_full_and_partial(self):
        cpe = CPE(row=0, col=0)
        assert cpe.simd_efficiency(4, dtype_bytes=8) == pytest.approx(1.0)
        assert cpe.simd_efficiency(2, dtype_bytes=8) == pytest.approx(0.5)
        assert cpe.simd_efficiency(6, dtype_bytes=8) == pytest.approx(0.75)
        assert cpe.simd_efficiency(8, dtype_bytes=4) == pytest.approx(1.0)

    def test_each_cpe_has_private_ldm(self):
        cpe = CPE(row=0, col=0)
        cpe.ldm.alloc("buf", 1000)
        other = CPE(row=0, col=1)
        assert other.ldm.used == 0


class TestMPE:
    def test_copy_slower_than_dma(self):
        # Principle 2: the memory-to-MPE copy path (9.9 GB/s) is far
        # slower than CPE-cluster DMA (28 GB/s).
        mpe = MPE()
        assert mpe.copy_bandwidth < SW_PARAMS.dma_peak_bw

    def test_copy_time(self):
        mpe = MPE()
        assert mpe.copy_time(9.9e9) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            mpe.copy_time(-1)

    def test_charges_categorized(self):
        clock = SimClock()
        mpe = MPE(clock=clock)
        mpe.charge_copy(1e6)
        mpe.charge_compute(1e6)
        assert clock.category_total("mpe_copy") > 0
        assert clock.category_total("mpe_compute") > 0


class TestCoreGroup:
    def test_has_64_cpes(self):
        cg = CoreGroup()
        assert cg.n_cpes == 64
        assert cg.cpe(7, 7).row == 7

    def test_phase_overlap_rule(self):
        cg = CoreGroup()
        # Compute-dominated phase: total == compute.
        cost = cg.phase_cost(flops=742.4e9, compute_efficiency=1.0, dma_bytes=1024)
        assert cost.total_s == pytest.approx(cost.compute_s)
        # DMA-dominated phase: total == dma.
        cost = cg.phase_cost(flops=1e6, dma_bytes=28e9)
        assert cost.total_s == pytest.approx(cost.dma_s)

    def test_serialized_rlc_adds(self):
        cg = CoreGroup()
        over = cg.phase_cost(flops=1e9, rlc_bytes=1e9, rlc_overlapped=False)
        under = cg.phase_cost(flops=1e9, rlc_bytes=1e9, rlc_overlapped=True)
        assert over.total_s > under.total_s

    def test_run_phase_advances_clock(self):
        cg = CoreGroup()
        cg.run_phase(flops=1e9)
        assert cg.clock.now > 0
        assert cg.clock.category_total("kernel") == pytest.approx(cg.clock.now)

    def test_shared_clock_across_engines(self):
        cg = CoreGroup()
        cg.dma.get.__self__.clock.advance(0)  # same object
        assert cg.dma.clock is cg.clock
        assert cg.rlc.clock is cg.clock


class TestProcessor:
    def test_four_core_groups(self):
        chip = SW26010()
        assert chip.n_core_groups == 4

    def test_peak_near_3_tflops(self):
        chip = SW26010()
        assert chip.peak_flops == pytest.approx(3.016e12, rel=0.01)

    def test_fork_join_takes_slowest(self):
        chip = SW26010()

        def work(cg):
            # CG index determines how much work it gets (imbalance).
            cg.run_phase(flops=(cg.index + 1) * 1e9, compute_efficiency=1.0)
            return cg.index

        results = chip.fork_join(work)
        assert results == [0, 1, 2, 3]
        slowest = 4e9 / 742.4e9
        assert chip.clock.now == pytest.approx(slowest + 2e-6, rel=1e-6)

    def test_parallel_time_helper(self):
        chip = SW26010()
        assert chip.parallel_time([1.0, 3.0, 2.0], sync_overhead_s=0.5) == 3.5
        assert chip.parallel_time([]) == 0.0
