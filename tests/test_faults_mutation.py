"""Mutation smoke tests: prove the chaos suite has teeth.

Each test plants a deliberate bug (a "mutant") in the fault plane via
monkeypatching and asserts that the corresponding chaos-suite invariant
*fails*. If a mutant survives — the invariant still passes — the suite has
a blind spot and this file turns red.

Two mutants break retry accounting (time not charged; retries not
counted), two break the renumber-rebuild recovery procedure (survivor set
computed wrong; rewind of the survivors' data sources forgotten).
"""

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    charge_transient,
    injecting,
    seed_string,
)
from repro.faults.session import run_chaos
from repro.frame.layers import (
    DataLayer,
    InnerProductLayer,
    SoftmaxWithLossLayer,
)
from repro.frame.net import Net
from repro.hw.clock import SimClock
from repro.utils.rng import seeded_rng


class SeekableShardSource:
    def __init__(self, batches):
        self.batches = list(batches)
        self.i = 0
        self.sample_shape = batches[0][0].shape[1:]

    def next_batch(self, batch_size):
        images, labels = self.batches[self.i % len(self.batches)]
        self.i += 1
        return images, labels

    def seek(self, n_batches, batch_size):
        self.i = n_batches


def make_factory(n_workers, per_worker=3, dim=5, classes=3, steps=8):
    rng = np.random.default_rng(0)
    data = [
        (
            rng.normal(size=(n_workers * per_worker, dim)).astype(np.float32),
            rng.integers(0, classes, size=n_workers * per_worker),
        )
        for _ in range(steps)
    ]

    def factory(rank):
        shard = SeekableShardSource(
            [
                (
                    img[rank * per_worker : (rank + 1) * per_worker],
                    lab[rank * per_worker : (rank + 1) * per_worker],
                )
                for img, lab in data
            ]
        )
        net = Net("mlp")
        net.add(DataLayer("data", shard, per_worker), bottoms=[], tops=["data", "label"])
        net.add(InnerProductLayer("ip", classes, rng=seeded_rng(7)), ["data"], ["logits"])
        net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
        return net

    return factory


# --------------------------------------------------------------------------- #
# the invariants the suite relies on, in callable form
# --------------------------------------------------------------------------- #
def _retry_count_invariant():
    """Retries observed == retries counted == per-kind injection counter."""
    plan = FaultPlan.from_seed(seed_string("transient", 0), ranks=2)
    fi = FaultInjector(plan)
    total = 0
    for _ in range(100):
        k, _extra = fi.transient("dma", 1e-3)
        total += k
    assert total > 0
    assert fi.retries == total == fi.injected["dma_corrupt"]


def _retry_time_invariant():
    """Every injected retry charges simulated time to the fault category."""
    plan = FaultPlan(
        seed="always", profile="transient", ranks=1, iterations=1, dma_rate=0.9
    )
    clock = SimClock()
    with injecting(plan) as fi:
        for _ in range(50):
            charge_transient("dma", clock, 1e-3, track="dma")
    assert fi.retries > 0
    assert clock.category_total("fault") > 0


def _crash_suite_checks(tmp_path, seed=seed_string("crash", 0)):
    """The recovery assertions from tests/test_faults_chaos.py, verbatim."""
    ranks, iterations = 4, 7
    report = run_chaos(
        make_factory(ranks),
        ranks=ranks,
        iterations=iterations,
        seed=seed,
        snapshot_every=2,
        snapshot_dir=str(tmp_path),
    )
    assert report.surviving_ranks == ranks - 1
    assert report.rank_rebuilds == 1
    assert report.weights_match
    return report


def test_invariants_pass_unmutated(tmp_path):
    _retry_count_invariant()
    _retry_time_invariant()
    _crash_suite_checks(tmp_path)


# --------------------------------------------------------------------------- #
# retry-accounting mutants
# --------------------------------------------------------------------------- #
def test_suite_catches_uncharged_retries(monkeypatch):
    """Mutant: retries fire but their backoff time is never charged."""
    orig = FaultInjector.transient

    def mutant(self, site, base_s):
        k, _extra = orig(self, site, base_s)
        return k, 0.0

    monkeypatch.setattr(FaultInjector, "transient", mutant)
    with pytest.raises(AssertionError):
        _retry_time_invariant()


def test_suite_catches_uncounted_retries(monkeypatch):
    """Mutant: retries charge time but the counters are never bumped."""
    from repro.faults.plan import SITE_KINDS

    orig = FaultInjector.transient

    def mutant(self, site, base_s):
        k, extra = orig(self, site, base_s)
        self.retries -= k
        self.injected[SITE_KINDS[site]] -= k
        return k, extra

    monkeypatch.setattr(FaultInjector, "transient", mutant)
    with pytest.raises(AssertionError):
        _retry_count_invariant()


# --------------------------------------------------------------------------- #
# renumber-rebuild mutants
# --------------------------------------------------------------------------- #
def test_suite_catches_wrong_survivor_set(monkeypatch, tmp_path):
    """Mutant: the rebuild drops a healthy rank along with the dead one."""
    import repro.parallel.trainer as trainer_mod
    from repro.faults.recovery import survivor_indices as orig

    monkeypatch.setattr(
        trainer_mod,
        "survivor_indices",
        lambda active, dead: orig(active, dead)[:-1],
    )
    with pytest.raises(AssertionError):
        _crash_suite_checks(tmp_path)


def test_suite_catches_missing_source_rewind(monkeypatch, tmp_path):
    """Mutant: the rebuild renumbers ranks but forgets to rewind the
    survivors' data sources to the resume iteration, so the recovered run
    trains on the wrong batches and diverges from the reference."""
    import repro.parallel.trainer as trainer_mod

    monkeypatch.setattr(
        trainer_mod, "rewind_net_sources", lambda net, iteration: 0
    )
    with pytest.raises(AssertionError):
        _crash_suite_checks(tmp_path)
