"""Conformance coverage for the point-to-point primitives.

``p2p_shift`` is a registered collective spec, so the registry-driven
``test_collective_conformance`` already differential-fuzzes it alongside
the allreduce family. This module adds what the registry sweep cannot:
the *faulted* contract at the same awkward rank set the clean equivalence
tests use — every chaos replay seed, ranks {2, 5, 8, 13}. A flaky link
retries the transfer with identical bytes, so injection may stretch
simulated time but must never change a bit of the delivered payloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultPlan, injecting
from repro.simmpi import P2PTransport, p2p_shift
from repro.testing import differential
from repro.testing.registry import make_fuzz_comm

#: Same rank set the clean collective-equivalence conformance tests sweep.
FAULTED_RANKS = (2, 5, 8, 13)


def test_p2p_shift_is_registered():
    from repro.testing.registry import collective_names

    assert "p2p_shift" in collective_names()


def test_p2p_shift_differential_fuzz(conformance_configs):
    reports = differential.fuzz_collective(
        "p2p_shift", n_configs=conformance_configs
    )
    assert len(reports) == conformance_configs
    bad = [r for r in reports if not r.ok]
    assert not bad, differential.summarize(reports)


def test_faulted_shift_stays_bit_exact(fault_seed):
    """Every chaos seed, every awkward rank count: rotation unharmed."""
    for p in FAULTED_RANKS:
        rng = np.random.default_rng([0xF17, p])
        inputs = [rng.normal(size=151) for _ in range(p)]
        expect = [inputs[(r - 1) % p].copy() for r in range(p)]

        clean_comm = make_fuzz_comm(p)
        clean = [b.copy() for b in inputs]
        p2p_shift(clean_comm, clean)

        comm = make_fuzz_comm(p)
        faulted = [b.copy() for b in inputs]
        plan = FaultPlan.from_seed(fault_seed, ranks=p)
        with injecting(plan):
            p2p_shift(comm, faulted)

        for rank in range(p):
            assert np.array_equal(faulted[rank], clean[rank])
            assert np.array_equal(faulted[rank], expect[rank])
        # Injection only ever adds time; the retry backoff is charged to
        # the clock's fault category.
        added = comm.clock.now - clean_comm.clock.now
        assert added >= comm.clock.category_total("fault") - 1e-15


def test_faulted_matched_sends_stay_bit_exact(fault_seed):
    """Raw send/recv pairs (the trainer's activation path) under chaos."""
    for p in FAULTED_RANKS:
        if p < 2:
            continue
        rng = np.random.default_rng([0xAC7, p])
        payloads = [rng.normal(size=(2, 29)).astype(np.float32)
                    for _ in range(p - 1)]
        plan = FaultPlan.from_seed(fault_seed, ranks=p)
        transport = P2PTransport(make_fuzz_comm(p))
        with injecting(plan):
            for s, payload in enumerate(payloads):
                transport.send(s, s + 1, payload, tag="fwd")
        for s, payload in enumerate(payloads):
            got = transport.recv(s, s + 1, tag="fwd")
            assert got.dtype == payload.dtype
            assert np.array_equal(got, payload)


@pytest.mark.parametrize("p", FAULTED_RANKS)
def test_dead_rank_fails_the_path_through_it(p):
    """A crashed rank breaks exactly the transfers that touch it."""
    comm = make_fuzz_comm(p)
    comm.failed_ranks = frozenset({p - 1})
    transport = P2PTransport(comm)
    from repro.errors import CollectiveTimeout

    with pytest.raises(CollectiveTimeout):
        transport.send(0, p - 1, np.zeros(4))
    if p > 2:
        transport.send(0, 1, np.zeros(4))  # healthy pair unaffected
