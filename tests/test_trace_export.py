"""Chrome trace-event export tests (:mod:`repro.trace.export`).

The golden-file test pins the exact JSON the exporter produces for a small
hand-built trace (``tests/golden/trace_small.json``) — byte-for-byte, since
traces are deterministic simulated time. ``validate_chrome`` is exercised
both on real exports and on deliberately broken objects.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.trace import Tracer, to_chrome, validate_chrome, write_chrome_json

GOLDEN = pathlib.Path(__file__).parent / "golden" / "trace_small.json"


def small_tracer() -> Tracer:
    """Two ranks, each with compute/DMA/collective activity + an instant."""
    tr = Tracer()
    for r in range(2):
        with tr.context(f"rank{r}"):
            tr.emit("conv1 fwd", "layer_fwd", track="layers", dur=2e-3,
                    args={"layer_type": "Convolution"})
            tr.emit("conv1 fwd", "cpe_compute", track="cpe", start=0.0, dur=1.5e-3)
            tr.emit("dma_get", "dma_transfer", track="dma", start=0.0, dur=0.5e-3,
                    args={"bytes": 65536, "n_cpes": 64})
            tr.instant_event("ldm_alloc img", "ldm_alloc", track="ldm",
                             args={"nbytes": 32768})
            tr.emit("step0", "collective_step", track="collective",
                    start=2e-3, dur=1e-4, args={"partner": 1 - r})
    return tr


def render(tracer: Tracer) -> str:
    return json.dumps(to_chrome(tracer), indent=1, sort_keys=True) + "\n"


class TestGolden:
    def test_matches_checked_in_golden_file(self):
        assert GOLDEN.is_file(), (
            f"golden file missing: {GOLDEN}; regenerate with "
            "`python -m tests.test_trace_export`"
        )
        assert render(small_tracer()) == GOLDEN.read_text()

    def test_golden_file_is_valid_chrome_format(self):
        assert validate_chrome(json.loads(GOLDEN.read_text())) == []

    def test_write_chrome_json_round_trips(self, tmp_path):
        path = write_chrome_json(small_tracer(), str(tmp_path / "t.json"))
        obj = json.loads(pathlib.Path(path).read_text())
        assert validate_chrome(obj) == []
        assert obj == to_chrome(small_tracer())


class TestStructure:
    @pytest.fixture()
    def chrome(self):
        return to_chrome(small_tracer())

    def test_one_process_per_rank(self, chrome):
        names = [e["args"]["name"] for e in chrome["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert names == ["rank0", "rank1"]

    def test_one_thread_per_resource(self, chrome):
        threads = {(e["pid"], e["args"]["name"]) for e in chrome["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        for pid in (1, 2):
            assert {n for p, n in threads if p == pid} == {
                "layers", "cpe", "dma", "ldm", "collective"}

    def test_timestamps_are_microseconds(self, chrome):
        ev = next(e for e in chrome["traceEvents"]
                  if e["ph"] == "X" and e["name"] == "conv1 fwd"
                  and e["cat"] == "layer_fwd")
        assert ev["ts"] == 0.0 and ev["dur"] == pytest.approx(2000.0)

    def test_instants_are_thread_scoped(self, chrome):
        inst = [e for e in chrome["traceEvents"] if e["ph"] == "i"]
        assert len(inst) == 2
        assert all(e["s"] == "t" and "dur" not in e for e in inst)

    def test_args_pass_through(self, chrome):
        ev = next(e for e in chrome["traceEvents"]
                  if e.get("cat") == "dma_transfer")
        assert ev["args"] == {"bytes": 65536, "n_cpes": 64}


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome([1, 2, 3])

    def test_rejects_missing_trace_events(self):
        assert validate_chrome({"displayTimeUnit": "ns"})

    def test_rejects_missing_fields(self):
        errs = validate_chrome({"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]})
        assert any("missing" in e for e in errs)

    def test_rejects_negative_duration(self):
        errs = validate_chrome({"traceEvents": [
            {"name": "p", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "p"}},
            {"name": "t", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "t"}},
            {"name": "x", "cat": "c", "ph": "X", "ts": 0, "dur": -5,
             "pid": 1, "tid": 1},
        ]})
        assert any("dur" in e for e in errs)

    def test_rejects_unnamed_pids(self):
        errs = validate_chrome({"traceEvents": [
            {"name": "x", "cat": "c", "ph": "X", "ts": 0, "dur": 1,
             "pid": 9, "tid": 9},
        ]})
        assert any("process_name" in e for e in errs)
        assert any("thread_name" in e for e in errs)

    def test_rejects_unserializable(self):
        errs = validate_chrome({"traceEvents": [], "oops": object()})
        assert any("serializable" in e for e in errs)

    def test_empty_tracer_exports_validly(self):
        assert validate_chrome(to_chrome(Tracer())) == []


if __name__ == "__main__":  # pragma: no cover - golden regeneration helper
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(render(small_tracer()))
    print(f"wrote {GOLDEN}")
