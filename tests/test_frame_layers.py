"""Per-layer unit tests: forward semantics and gradient checks."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layers import (
    AccuracyLayer,
    BatchNormLayer,
    ConcatLayer,
    ConvolutionLayer,
    DropoutLayer,
    EltwiseLayer,
    InnerProductLayer,
    LRNLayer,
    LSTMLayer,
    PoolingLayer,
    ReLULayer,
    SoftmaxLayer,
    SoftmaxWithLossLayer,
    TensorTransformLayer,
)
from repro.utils.rng import seeded_rng

from repro.testing.gradcheck import check_input_gradients, check_param_gradients, run_layer

RNG = np.random.default_rng(12345)


class TestConvolutionLayer:
    def make(self):
        return ConvolutionLayer("conv", num_output=4, kernel_size=3, pad=1, rng=seeded_rng(7))

    def test_input_gradient(self):
        x = RNG.normal(size=(2, 3, 6, 6))
        check_input_gradients(self.make, [x])

    def test_weight_gradient(self):
        x = RNG.normal(size=(2, 3, 6, 6))
        check_param_gradients(self.make, [x], param_index=0)

    def test_bias_gradient(self):
        x = RNG.normal(size=(2, 3, 6, 6))
        check_param_gradients(self.make, [x], param_index=1)

    def test_output_shape_stride2(self):
        layer = ConvolutionLayer("c", 8, 3, stride=2, pad=1, rng=seeded_rng(0))
        blobs = run_layer(layer, [RNG.normal(size=(1, 2, 9, 9))])
        assert blobs[1].shape == (1, 8, 5, 5)

    def test_chosen_plans_reported(self):
        layer = self.make()
        run_layer(layer, [RNG.normal(size=(2, 3, 6, 6))])
        plans = layer.chosen_plans()
        assert plans["forward"] == "explicit"  # Ni=3 rules out implicit

    def test_rejects_non_4d(self):
        layer = self.make()
        with pytest.raises(ShapeError):
            run_layer(layer, [RNG.normal(size=(2, 3))])


class TestInnerProductLayer:
    def make(self):
        return InnerProductLayer("ip", num_output=5, rng=seeded_rng(8))

    def test_forward_matches_matmul(self):
        x = RNG.normal(size=(3, 7))
        layer = self.make()
        blobs = run_layer(layer, [x])
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(blobs[1].data, expected, rtol=1e-6)

    def test_flattens_4d_input(self):
        layer = self.make()
        blobs = run_layer(layer, [RNG.normal(size=(2, 3, 4, 5))])
        assert blobs[1].shape == (2, 5)

    def test_input_gradient(self):
        check_input_gradients(self.make, [RNG.normal(size=(3, 7))])

    def test_weight_gradient(self):
        check_param_gradients(self.make, [RNG.normal(size=(3, 7))], param_index=0)

    def test_bias_gradient(self):
        check_param_gradients(self.make, [RNG.normal(size=(3, 7))], param_index=1)


class TestReLULayer:
    def test_forward(self):
        layer = ReLULayer("r")
        blobs = run_layer(layer, [np.array([[-1.0, 2.0, -3.0, 4.0]])])
        np.testing.assert_array_equal(blobs[1].data, [[0.0, 2.0, 0.0, 4.0]])

    def test_leaky(self):
        layer = ReLULayer("r", negative_slope=0.1)
        blobs = run_layer(layer, [np.array([[-10.0, 5.0]])])
        np.testing.assert_allclose(blobs[1].data, [[-1.0, 5.0]])

    def test_input_gradient(self):
        # Keep x away from the kink for finite differences.
        x = RNG.normal(size=(4, 6))
        x[np.abs(x) < 0.05] = 0.5
        check_input_gradients(lambda: ReLULayer("r", negative_slope=0.2), [x])


class TestPoolingLayer:
    def test_shapes(self):
        layer = PoolingLayer("p", kernel_size=2, stride=2)
        blobs = run_layer(layer, [RNG.normal(size=(2, 3, 8, 8))])
        assert blobs[1].shape == (2, 3, 4, 4)

    def test_global_pooling(self):
        layer = PoolingLayer("p", kernel_size=1, mode="avg", global_pooling=True)
        x = RNG.normal(size=(2, 3, 5, 5))
        blobs = run_layer(layer, [x])
        assert blobs[1].shape == (2, 3, 1, 1)
        np.testing.assert_allclose(
            blobs[1].data[:, :, 0, 0], x.mean(axis=(2, 3)), rtol=1e-6
        )

    def test_avg_input_gradient(self):
        check_input_gradients(
            lambda: PoolingLayer("p", 2, 2, mode="avg"), [RNG.normal(size=(1, 2, 4, 4))]
        )

    def test_max_input_gradient(self):
        x = RNG.normal(size=(1, 2, 4, 4)) * 10  # well-separated maxima
        check_input_gradients(lambda: PoolingLayer("p", 2, 2), [x])


class TestBatchNormLayer:
    def test_train_normalizes(self):
        layer = BatchNormLayer("bn")
        x = RNG.normal(loc=5.0, scale=3.0, size=(16, 4, 3, 3))
        blobs = run_layer(layer, [x])
        y = blobs[1].data
        assert np.abs(y.mean(axis=(0, 2, 3))).max() < 1e-5
        assert np.abs(y.std(axis=(0, 2, 3)) - 1).max() < 1e-3

    def test_running_stats_used_in_test_phase(self):
        layer = BatchNormLayer("bn", momentum=0.0)  # running = last batch
        x = RNG.normal(loc=2.0, size=(32, 3, 4, 4))
        run_layer(layer, [x])
        layer.phase = "test"
        b = Blob("b", x.shape, dtype=np.float64)
        b.data = x
        t = Blob("t")
        layer.reshape([b], [t])
        layer.forward([b], [t])
        assert np.abs(t.data.mean(axis=(0, 2, 3))).max() < 0.1

    def test_input_gradient(self):
        check_input_gradients(
            lambda: BatchNormLayer("bn"), [RNG.normal(size=(6, 3, 2, 2))], rtol=1e-3
        )

    def test_gamma_beta_gradients(self):
        x = RNG.normal(size=(6, 3, 2, 2))
        check_param_gradients(lambda: BatchNormLayer("bn"), [x], param_index=0, rtol=1e-3)
        check_param_gradients(lambda: BatchNormLayer("bn"), [x], param_index=1, rtol=1e-3)

    def test_2d_input(self):
        layer = BatchNormLayer("bn")
        blobs = run_layer(layer, [RNG.normal(size=(8, 5))])
        assert blobs[1].shape == (8, 5)


class TestLRNLayer:
    def test_matches_direct_formula(self):
        layer = LRNLayer("lrn", local_size=3, alpha=2.0, beta=0.5, k=1.5)
        x = RNG.normal(size=(2, 5, 2, 2))
        blobs = run_layer(layer, [x])
        b, c = 1, 2
        window = x[b, 1:4, :, :] ** 2  # channels 1..3 around channel 2
        scale = 1.5 + (2.0 / 3) * window.sum(axis=0)
        np.testing.assert_allclose(
            blobs[1].data[b, c], x[b, c] * scale**-0.5, rtol=1e-6
        )

    def test_input_gradient(self):
        check_input_gradients(
            lambda: LRNLayer("lrn", local_size=3, alpha=0.3, beta=0.75),
            [RNG.normal(size=(2, 6, 3, 3))],
            rtol=1e-3,
        )

    def test_even_window_rejected(self):
        with pytest.raises(ShapeError):
            LRNLayer("lrn", local_size=4)


class TestDropoutLayer:
    def test_test_phase_identity(self):
        layer = DropoutLayer("d", 0.5, rng=seeded_rng(0))
        layer.phase = "test"
        x = RNG.normal(size=(4, 4))
        blobs = run_layer(layer, [x])
        np.testing.assert_array_equal(blobs[1].data, x)

    def test_train_scales_kept_units(self):
        layer = DropoutLayer("d", 0.5, rng=seeded_rng(1))
        x = np.ones((1000,)).reshape(1, 1000)
        blobs = run_layer(layer, [x])
        y = blobs[1].data
        kept = y[y != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.35 < (y != 0).mean() < 0.65

    def test_backward_uses_same_mask(self):
        layer = DropoutLayer("d", 0.5, rng=seeded_rng(2))
        x = RNG.normal(size=(3, 8))
        blobs = run_layer(layer, [x])
        mask = layer._mask
        blobs[1].diff = np.ones_like(x)
        layer.backward([blobs[1]], [blobs[0]])
        np.testing.assert_allclose(blobs[0].diff, mask)

    def test_invalid_ratio(self):
        with pytest.raises(ShapeError):
            DropoutLayer("d", 1.0)


class TestSoftmaxLayers:
    def test_softmax_rows_sum_to_one(self):
        layer = SoftmaxLayer("s")
        blobs = run_layer(layer, [RNG.normal(size=(5, 7)) * 10])
        np.testing.assert_allclose(blobs[1].data.sum(axis=1), np.ones(5), rtol=1e-6)

    def test_softmax_input_gradient(self):
        check_input_gradients(lambda: SoftmaxLayer("s"), [RNG.normal(size=(3, 5))])

    def test_loss_value_matches_manual(self):
        logits = np.array([[2.0, 1.0, 0.1], [0.0, 3.0, 0.0]])
        labels = np.array([0.0, 1.0])
        layer = SoftmaxWithLossLayer("loss")
        blobs = run_layer(layer, [logits, labels])
        p0 = np.exp(2.0) / np.exp([2.0, 1.0, 0.1]).sum()
        p1 = np.exp(3.0) / np.exp([0.0, 3.0, 0.0]).sum()
        expected = -(np.log(p0) + np.log(p1)) / 2
        assert blobs[2].data[0] == pytest.approx(expected, rel=1e-5)

    def test_loss_gradient_is_p_minus_onehot(self):
        logits = RNG.normal(size=(4, 6))
        labels = np.array([0.0, 2.0, 5.0, 3.0])
        layer = SoftmaxWithLossLayer("loss")
        blobs = run_layer(layer, [logits, labels])
        blobs[2].diff = np.ones(1)
        layer.backward([blobs[2]], blobs[:2])
        p = layer._probs.copy()
        p[np.arange(4), labels.astype(int)] -= 1
        np.testing.assert_allclose(blobs[0].diff, p / 4, rtol=1e-6)

    def test_label_shape_validation(self):
        layer = SoftmaxWithLossLayer("loss")
        with pytest.raises(ShapeError):
            run_layer(layer, [RNG.normal(size=(4, 6)), np.zeros(3)])


class TestAccuracyLayer:
    def test_top1(self):
        logits = np.array([[1.0, 5.0], [3.0, 0.0], [0.0, 2.0]])
        labels = np.array([1.0, 0.0, 0.0])
        blobs = run_layer(AccuracyLayer("acc"), [logits, labels])
        assert blobs[2].data[0] == pytest.approx(2 / 3)

    def test_topk(self):
        logits = np.array([[5.0, 4.0, 0.0, 1.0]])
        labels = np.array([1.0])
        blobs = run_layer(AccuracyLayer("acc", top_k=2), [logits, labels])
        assert blobs[2].data[0] == pytest.approx(1.0)

    def test_topk_too_large(self):
        with pytest.raises(ShapeError):
            run_layer(AccuracyLayer("acc", top_k=5), [np.zeros((2, 3)), np.zeros(2)])


class TestConcatEltwise:
    def test_concat_forward_backward(self):
        a = RNG.normal(size=(2, 3, 4, 4))
        b = RNG.normal(size=(2, 5, 4, 4))
        layer = ConcatLayer("cat")
        blobs = run_layer(layer, [a, b])
        assert blobs[2].shape == (2, 8, 4, 4)
        np.testing.assert_array_equal(blobs[2].data[:, :3], a)
        blobs[2].diff = RNG.normal(size=(2, 8, 4, 4))
        layer.backward([blobs[2]], blobs[:2])
        np.testing.assert_array_equal(blobs[0].diff, blobs[2].diff[:, :3])
        np.testing.assert_array_equal(blobs[1].diff, blobs[2].diff[:, 3:])

    def test_concat_off_axis_mismatch(self):
        with pytest.raises(ShapeError):
            run_layer(ConcatLayer("cat"), [np.zeros((2, 3, 4, 4)), np.zeros((3, 3, 4, 4))])

    def test_eltwise_sum_with_coeffs(self):
        a, b = np.ones((2, 2)), np.full((2, 2), 3.0)
        layer = EltwiseLayer("e", coeffs=[2.0, -1.0])
        blobs = run_layer(layer, [a, b])
        np.testing.assert_allclose(blobs[2].data, -1.0)

    def test_eltwise_max_routes_gradient(self):
        a = np.array([[1.0, 5.0]])
        b = np.array([[2.0, 3.0]])
        layer = EltwiseLayer("e", operation="max")
        blobs = run_layer(layer, [a, b])
        np.testing.assert_array_equal(blobs[2].data, [[2.0, 5.0]])
        blobs[2].diff = np.array([[1.0, 1.0]])
        layer.backward([blobs[2]], blobs[:2])
        np.testing.assert_array_equal(blobs[0].diff, [[0.0, 1.0]])
        np.testing.assert_array_equal(blobs[1].diff, [[1.0, 0.0]])

    def test_eltwise_prod_gradient(self):
        a = RNG.normal(size=(3, 3)) + 3.0
        b = RNG.normal(size=(3, 3)) + 3.0
        check_input_gradients(lambda: EltwiseLayer("e", operation="prod"), [a, b])
        check_input_gradients(
            lambda: EltwiseLayer("e", operation="prod"), [a, b], input_index=1
        )

    def test_eltwise_needs_two(self):
        with pytest.raises(ShapeError):
            run_layer(EltwiseLayer("e"), [np.zeros((2, 2))])


class TestTensorTransformLayer:
    def test_round_trip(self):
        x = RNG.normal(size=(2, 3, 4, 5))
        fwd = TensorTransformLayer("t", to_implicit=True)
        blobs = run_layer(fwd, [x])
        assert blobs[1].shape == (4, 5, 3, 2)
        inv = TensorTransformLayer("ti", to_implicit=False)
        blobs2 = run_layer(inv, [blobs[1].data])
        np.testing.assert_array_equal(blobs2[1].data, x)

    def test_gradient_is_inverse_transpose(self):
        x = RNG.normal(size=(2, 3, 4, 5))
        check_input_gradients(lambda: TensorTransformLayer("t"), [x])


class TestLSTMLayer:
    def make(self):
        return LSTMLayer("lstm", num_output=4, rng=seeded_rng(21))

    def test_output_shape(self):
        blobs = run_layer(self.make(), [RNG.normal(size=(2, 5, 3))])
        assert blobs[1].shape == (2, 5, 4)

    def test_input_gradient(self):
        x = RNG.normal(size=(2, 3, 3))
        check_input_gradients(self.make, [x], rtol=1e-3)

    def test_weight_gradients(self):
        x = RNG.normal(size=(2, 3, 3))
        for p in range(3):  # wx, wh, bias
            check_param_gradients(self.make, [x], param_index=p, rtol=1e-3)

    def test_forget_bias_initialized_to_one(self):
        layer = self.make()
        run_layer(layer, [RNG.normal(size=(1, 2, 3))])
        h = layer.hidden
        np.testing.assert_array_equal(layer.bias.data[h : 2 * h], np.ones(h))
