"""End-to-end tracing tests: instrumentation, invariance, harness flags.

Pins the ISSUE acceptance criteria:

* the accounting replay used by trace sessions charges *exactly* what the
  executed recursive halving/doubling allreduce charges;
* enabling tracing changes no simulated-time results (the no-op guarantee);
* the fig7 harness ``--trace`` flag emits ranks x rounds collective spans;
* the ``python -m repro trace`` CLI produces valid Chrome trace JSON.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import trace
from repro.simmpi import SimComm, block_placement, rhd_allreduce
from repro.topology import TaihuLightFabric
from repro.trace.session import replay_rhd, trace_training_step


def _comm(p: int, q: int | None = None) -> SimComm:
    q = q if q is not None else p
    fabric = TaihuLightFabric(n_nodes=p, nodes_per_supernode=q)
    return SimComm(fabric, block_placement(p, q))


class TestReplayEquivalence:
    """replay_rhd mirrors rhd_allreduce's accounting exactly."""

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13])
    @pytest.mark.parametrize("nbytes", [1 << 10, 1 << 20])
    def test_time_and_steps_match_executed(self, p, nbytes):
        bufs = [np.ones(nbytes // 8) for _ in range(p)]
        executed = rhd_allreduce(_comm(p), bufs)
        replayed = replay_rhd(_comm(p), nbytes, itemsize=8)
        assert replayed.steps == executed.steps
        assert replayed.time_s == pytest.approx(executed.time_s, rel=1e-12)

    def test_matches_with_supernode_crossing(self):
        # 8 nodes in 2 supernodes: cross-supernode hops cost differently.
        bufs = [np.ones(1 << 17) for _ in range(8)]
        executed = rhd_allreduce(_comm(8, 4), bufs)
        replayed = replay_rhd(_comm(8, 4), 1 << 20, itemsize=8)
        assert replayed.steps == executed.steps
        assert replayed.time_s == pytest.approx(executed.time_s, rel=1e-12)
        assert replayed.bytes_cross == pytest.approx(executed.bytes_cross)

    def test_single_rank_is_free(self):
        res = replay_rhd(_comm(1), 1 << 20)
        assert res.steps == 0 and res.time_s == 0.0


class TestTracingIsInert:
    """Enabling tracing never changes simulated-time results."""

    def test_fig7_results_identical_with_tracing(self):
        from repro.harness import fig7_allreduce

        baseline = fig7_allreduce.generate(nbytes=1 << 14)
        with trace.tracing() as tr:
            traced = fig7_allreduce.generate(nbytes=1 << 14)
        assert traced == baseline  # frozen dataclass: field-wise equality
        assert len(tr.spans) > 0  # ... but spans were collected

    def test_solver_time_identical_with_tracing(self):
        from repro.frame.model_zoo import lenet
        from repro.frame.solver import SGDSolver

        def run():
            net = lenet.build(batch_size=4)
            return SGDSolver(net, base_lr=0.01).step(2).simulated_time_s

        baseline = run()
        with trace.tracing() as tr:
            traced = run()
        assert traced == baseline
        assert tr.by_category("solver_iter")
        assert tr.by_category("layer_fwd") and tr.by_category("layer_bwd")

    def test_collective_time_identical_with_tracing(self):
        bufs = lambda: [np.ones(1 << 12) for _ in range(4)]  # noqa: E731
        baseline = rhd_allreduce(_comm(4, 2), bufs())
        with trace.tracing() as tr:
            traced = rhd_allreduce(_comm(4, 2), bufs())
        assert traced.time_s == baseline.time_s
        assert traced.steps == baseline.steps
        assert tr.by_category("collective_step")


class TestPlanCostSpans:
    def test_traced_cost_emits_breakdown(self):
        from repro.kernels.gemm import SWGemmPlan

        plan = SWGemmPlan(m=256, n=256, k=256)
        with trace.tracing() as tr:
            cost = plan.traced_cost()
        parent = next(s for s in tr.spans if s.cat == "plan_cost")
        assert parent.track == "plan" and parent.dur_s == cost.total_s
        cpe = next(s for s in tr.spans if s.cat == "cpe_compute")
        assert cpe.start_s == parent.start_s and cpe.dur_s == cost.compute_s

    def test_traced_cost_equals_cost_when_disabled(self):
        from repro.kernels.gemm import SWGemmPlan

        plan = SWGemmPlan(m=256, n=256, k=256)
        assert plan.traced_cost() == plan.cost()
        assert trace.active() is trace.NULL_TRACER


class TestFig7TraceFlag:
    def test_collective_spans_are_ranks_times_rounds(self, tmp_path, capsys):
        from repro.harness import fig7_allreduce as f7

        out = tmp_path / "fig7.json"
        f7.main(["--trace", str(out)])
        capsys.readouterr()
        obj = json.loads(out.read_text())
        assert trace.validate_chrome(obj) == []
        steps = [e for e in obj["traceEvents"]
                 if e.get("cat") == "collective_step" and e["ph"] == "X"]
        # 8 ranks, log2(8) halving + log2(8) doubling = 6 rounds, per scheme.
        rounds = 2 * int(np.log2(f7.P))
        per_scheme = f7.P * rounds
        assert len(steps) == 2 * per_scheme
        pids = {e["args"]["name"] for e in obj["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert pids == {"original", "improved"}

    def test_no_trace_flag_leaves_tracing_off(self, capsys):
        from repro.harness import fig7_allreduce as f7

        f7.main([])
        capsys.readouterr()
        assert trace.active() is trace.NULL_TRACER


class TestTraceSession:
    def test_all_ranks_get_all_resource_tracks(self):
        from repro.frame.model_zoo import lenet

        net = lenet.build(batch_size=4)
        tr, summary = trace_training_step(net, ranks=2)
        tracks = set(tr.tracks())
        for r in range(2):
            for res in ("layers", "cpe", "dma", "solver", "collective"):
                assert f"rank{r}/{res}" in tracks
        assert summary.ranks == 2
        assert summary.compute_s > 0 and summary.allreduce_s > 0
        assert summary.total_s == summary.compute_s + summary.allreduce_s

    def test_collective_follows_compute_on_timeline(self):
        from repro.frame.model_zoo import lenet

        net = lenet.build(batch_size=4)
        tr, summary = trace_training_step(net, ranks=2)
        first_step = min(s.start_s for s in tr.by_category("collective_step"))
        assert first_step == pytest.approx(summary.compute_s)

    def test_scheme_and_supernode_validation(self):
        from repro.frame.model_zoo import lenet

        net = lenet.build(batch_size=4)
        with pytest.raises(ValueError):
            trace_training_step(net, ranks=4, scheme="bogus")
        with pytest.raises(ValueError):
            trace_training_step(net, ranks=4, nodes_per_supernode=3)

    def test_ambient_tracer_restored(self):
        from repro.frame.model_zoo import lenet

        trace_training_step(lenet.build(batch_size=4), ranks=2)
        assert trace.active() is trace.NULL_TRACER


class TestCLI:
    def test_trace_command_end_to_end(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "lenet.json"
        rc = main(["trace", "lenet", "--ranks", "2", "--batch", "4",
                   "--out", str(out), "--timeline"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "wrote" in printed and "bottleneck" in printed
        obj = json.loads(out.read_text())
        assert trace.validate_chrome(obj) == []
        cats = {e.get("cat") for e in obj["traceEvents"] if e["ph"] in ("X", "i")}
        assert {"layer_fwd", "layer_bwd", "cpe_compute", "dma_transfer",
                "collective_step", "solver_iter"} <= cats
        pids = {e["args"]["name"] for e in obj["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert pids == {"rank0", "rank1"}
