"""Tests for the on-disk record format and file-backed data source."""

import numpy as np
import pytest

from repro.frame.layers import DataLayer, InnerProductLayer, SoftmaxWithLossLayer
from repro.frame.net import Net
from repro.frame.solver import SGDSolver
from repro.io.records import (
    FileBackedSource,
    RecordFormatError,
    RecordReader,
    RecordWriter,
    write_synthetic_records,
)
from repro.utils.rng import seeded_rng


@pytest.fixture()
def record_file(tmp_path):
    path = str(tmp_path / "data.swrec")
    write_synthetic_records(
        path, n_records=40, num_classes=5, sample_shape=(2, 4, 4), seed=7
    )
    return path


class TestRecordRoundTrip:
    def test_write_read_exact(self, tmp_path):
        path = str(tmp_path / "rt.swrec")
        rng = np.random.default_rng(0)
        images = rng.normal(size=(10, 3, 5)).astype(np.float32)
        labels = rng.integers(0, 9, size=10)
        with RecordWriter(path, (3, 5)) as w:
            for img, lab in zip(images, labels):
                w.write(int(lab), img)
        with RecordReader(path) as r:
            assert r.count == 10
            assert r.sample_shape == (3, 5)
            for i in range(10):
                lab, img = r.read(i)
                assert lab == labels[i]
                np.testing.assert_array_equal(img, images[i])

    def test_random_access_any_order(self, record_file):
        with RecordReader(record_file) as r:
            a = r.read(17)
            _ = r.read(3)
            b = r.read(17)
            assert a[0] == b[0]
            np.testing.assert_array_equal(a[1], b[1])

    def test_record_bytes(self, record_file):
        with RecordReader(record_file) as r:
            assert r.record_bytes == 8 + 4 * 2 * 4 * 4

    def test_out_of_range(self, record_file):
        with RecordReader(record_file) as r:
            with pytest.raises(IndexError):
                r.read(40)

    def test_shape_mismatch_on_write(self, tmp_path):
        with RecordWriter(str(tmp_path / "x.swrec"), (2, 2)) as w:
            with pytest.raises(RecordFormatError):
                w.write(0, np.zeros((3, 3), dtype=np.float32))

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.bin")
        with open(path, "wb") as fh:
            fh.write(b"NOTAFILE" + b"\x00" * 64)
        with pytest.raises(RecordFormatError):
            RecordReader(path)

    def test_truncated_file_rejected(self, record_file, tmp_path):
        data = open(record_file, "rb").read()
        path = str(tmp_path / "trunc.swrec")
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        with pytest.raises(RecordFormatError):
            RecordReader(path)


class TestFileBackedSource:
    def test_batches_have_right_shapes(self, record_file):
        src = FileBackedSource(record_file, seed=1)
        images, labels = src.next_batch(6)
        assert images.shape == (6, 2, 4, 4)
        assert labels.shape == (6,)
        assert src.batch_bytes(6) == 6 * (8 + 128)

    def test_sampling_deterministic_per_seed(self, record_file):
        a = FileBackedSource(record_file, seed=2).next_batch(8)
        b = FileBackedSource(record_file, seed=2).next_batch(8)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_trains_a_net_end_to_end(self, record_file):
        """A net fed from disk must train exactly like one fed in memory."""
        src = FileBackedSource(record_file, seed=3)
        net = Net("disk")
        net.add(DataLayer("data", src, 8), bottoms=[], tops=["data", "label"])
        net.add(InnerProductLayer("ip", 5, rng=seeded_rng(4)), ["data"], ["logits"])
        net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
        stats = SGDSolver(net, base_lr=0.05).step(20)
        assert stats.losses[-1] < stats.losses[0]
