"""End-to-end training tests: solver mechanics and actual learning."""

import numpy as np
import pytest

from repro.frame.model_zoo import lenet
from repro.frame.solver import SGDSolver
from repro.io.dataset import SyntheticImageNet
from repro.utils.rng import seeded_rng


def small_lenet(batch=8, noise=0.3):
    src = SyntheticImageNet(
        num_classes=5, sample_shape=(1, 16, 16), noise=noise, seed=4
    )
    return lenet.build(
        batch_size=batch,
        num_classes=5,
        sample_shape=(1, 16, 16),
        source=src,
        rng=seeded_rng(99),
    )


class TestSolverMechanics:
    def test_lr_policies(self):
        net = small_lenet()
        s = SGDSolver(net, base_lr=0.1, lr_policy="step", gamma=0.5, stepsize=10)
        assert s.learning_rate(0) == pytest.approx(0.1)
        assert s.learning_rate(10) == pytest.approx(0.05)
        assert s.learning_rate(25) == pytest.approx(0.025)

        s = SGDSolver(net, base_lr=0.1, lr_policy="multistep", gamma=0.1, steps=[5, 15])
        assert s.learning_rate(4) == pytest.approx(0.1)
        assert s.learning_rate(5) == pytest.approx(0.01)
        assert s.learning_rate(20) == pytest.approx(0.001)

        s = SGDSolver(net, base_lr=1.0, lr_policy="poly", max_iter=100, power=2.0)
        assert s.learning_rate(0) == pytest.approx(1.0)
        assert s.learning_rate(50) == pytest.approx(0.25)
        assert s.learning_rate(100) == pytest.approx(0.0)

    def test_invalid_hyperparameters(self):
        net = small_lenet()
        with pytest.raises(ValueError):
            SGDSolver(net, base_lr=0.0)
        with pytest.raises(ValueError):
            SGDSolver(net, momentum=1.0)
        with pytest.raises(ValueError):
            SGDSolver(net, lr_policy="cosine")

    def test_momentum_accumulates_velocity(self):
        net = small_lenet()
        solver = SGDSolver(net, base_lr=0.01, momentum=0.9)
        solver.step(2)
        assert solver._velocity  # velocities exist after updates
        assert solver.iter == 2

    def test_weight_decay_shrinks_weights(self):
        # With zero gradient contribution (lr tiny) decay alone should act;
        # easier: compare norms with and without decay after a few steps.
        net_a = small_lenet()
        net_b = small_lenet()
        sa = SGDSolver(net_a, base_lr=0.01, momentum=0.0, weight_decay=0.0)
        sb = SGDSolver(net_b, base_lr=0.01, momentum=0.0, weight_decay=0.1)
        sa.step(3)
        sb.step(3)
        wa = np.linalg.norm(net_a.layer_by_name("conv1").weight.data)
        wb = np.linalg.norm(net_b.layer_by_name("conv1").weight.data)
        assert wb < wa

    def test_stats_recorded(self):
        net = small_lenet()
        solver = SGDSolver(net, base_lr=0.01)
        stats = solver.step(3)
        assert stats.iterations == 3
        assert len(stats.losses) == 3
        assert stats.simulated_time_s > 0
        assert stats.final_loss == stats.losses[-1]

    def test_stats_empty_final_loss(self):
        from repro.frame.solver import SolverStats

        with pytest.raises(ValueError):
            SolverStats().final_loss


class TestLearning:
    def test_lenet_learns_synthetic_classes(self):
        """The whole stack must actually train: loss down, accuracy up."""
        net = small_lenet(batch=16, noise=0.2)
        solver = SGDSolver(net, base_lr=0.005, momentum=0.9)
        first = solver.step(5)
        last = solver.step(40)
        assert np.mean(last.losses[-5:]) < 0.5 * np.mean(first.losses[:5])
        # Accuracy layer tracks training batches.
        acc = float(net.blobs["accuracy"].data[0])
        assert acc > 0.6

    def test_training_is_deterministic(self):
        a = SGDSolver(small_lenet(), base_lr=0.01).step(5).losses
        b = SGDSolver(small_lenet(), base_lr=0.01).step(5).losses
        np.testing.assert_allclose(a, b, rtol=0, atol=0)
