"""Tests for the register-communication GEMM plan (Sec. IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.kernels import SWGemmPlan, gemm_register_schedule
from repro.kernels.gemm import GemmBlocking


class TestScheduleCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=40),
        k=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=1, max_value=40),
    )
    def test_schedule_equals_matmul(self, m, k, n):
        rng = np.random.default_rng(m * 10000 + k * 100 + n)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        np.testing.assert_allclose(gemm_register_schedule(a, b), a @ b, rtol=1e-10)

    def test_schedule_exact_multiple_of_mesh(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(16, 24))
        b = rng.normal(size=(24, 32))
        np.testing.assert_allclose(gemm_register_schedule(a, b), a @ b, rtol=1e-12)

    def test_shape_mismatch_raises(self):
        with pytest.raises(PlanError):
            gemm_register_schedule(np.ones((2, 3)), np.ones((4, 5)))


class TestPlanFunctional:
    def test_run_matches_matmul(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(32, 48)).astype(np.float32)
        b = rng.normal(size=(48, 20)).astype(np.float32)
        plan = SWGemmPlan(32, 20, 48)
        np.testing.assert_allclose(plan.run(a, b), a @ b, rtol=1e-5)

    def test_run_accumulates_into_c(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 8))
        c = np.ones((8, 8))
        plan = SWGemmPlan(8, 8, 8)
        out = plan.run(a, b, c)
        np.testing.assert_allclose(out, 1.0 + a @ b, rtol=1e-12)
        assert out is c

    def test_run_shape_checks(self):
        plan = SWGemmPlan(4, 5, 6)
        with pytest.raises(PlanError):
            plan.run(np.ones((4, 7)), np.ones((7, 5)))
        with pytest.raises(PlanError):
            plan.run(np.ones((4, 6)), np.ones((6, 5)), np.ones((4, 6)))

    def test_bad_dims_rejected(self):
        with pytest.raises(PlanError):
            SWGemmPlan(0, 4, 4)


class TestPlanCostModel:
    def test_blocking_fits_ldm(self):
        for dims in [(64, 64, 64), (512, 3136, 2304), (4096, 4096, 4096), (8, 50000, 27)]:
            plan = SWGemmPlan(*dims)
            blk = plan.blocking
            assert plan._ldm_fit(blk.mb, blk.nb, blk.kb)

    def test_large_square_gemm_is_compute_bound(self):
        plan = SWGemmPlan(2048, 2048, 2048, dtype_bytes=8)
        cost = plan.cost()
        assert cost.compute_s > cost.dma_s
        # Sustained performance should be a large fraction of the 742 GFlops
        # CPE-cluster peak for big double-precision GEMM.
        assert cost.gflops > 400

    def test_single_precision_pays_conversion_tax(self):
        d = SWGemmPlan(1024, 1024, 1024, dtype_bytes=8).cost()
        s = SWGemmPlan(1024, 1024, 1024, dtype_bytes=4).cost()
        assert s.compute_s > d.compute_s

    def test_small_k_degrades_gflops(self):
        # The paper: conv1_1's K*K*Ni = 27 contraction makes GEMM slow.
        small = SWGemmPlan(64, 50176, 27).cost()
        big = SWGemmPlan(256, 3136, 2304).cost()
        assert small.gflops < 0.5 * big.gflops

    def test_small_m_degrades_gflops(self):
        # "to make GEMM compute-bounded, we have to make m > 160"
        small = SWGemmPlan(32, 4096, 1024).cost()
        big = SWGemmPlan(512, 4096, 1024).cost()
        assert small.gflops < big.gflops

    def test_flops_counted_exactly(self):
        plan = SWGemmPlan(10, 20, 30)
        assert plan.cost().flops == 2 * 10 * 20 * 30

    def test_blocking_avoids_ragged_fringe(self):
        # Regression (fuzzer-surfaced): scoring candidates by raw intensity
        # picked mb=384 for m=498 — a 384+114 split whose fringe block the
        # efficiency model prices far below an even 2x256 split — so the
        # achieved rate *dropped* when m doubled from 249. The chooser now
        # minimizes modeled time over feasible blockings.
        plan = SWGemmPlan(498, 64, 65)
        assert 498 / (-(-498 // plan.blocking.mb) * plan.blocking.mb) > 0.9
        assert plan.cost().gflops >= SWGemmPlan(249, 64, 65).cost().gflops * 0.999

    def test_chosen_blocking_is_modeled_optimal(self):
        # The chooser's objective and cost() must agree: no feasible
        # blocking in the chooser's candidate space may beat the chosen
        # one. (Candidates are clamped to one mesh row past each dim —
        # the library does not pad dims far beyond their extent.)
        for dims in [(498, 64, 65), (512, 512, 512), (8, 50000, 27)]:
            plan = SWGemmPlan(*dims)
            chosen = plan.cost().total_s
            mesh = plan.params.cpe_rows
            candidates = [mesh * x for x in (1, 2, 4, 8, 16, 24, 32, 48, 64)]

            def opts(dim):
                return [c for c in candidates if c < dim + mesh] or [mesh]

            for mb in opts(dims[0]):
                for nb in opts(dims[1]):
                    for kb in opts(dims[2]):
                        if not plan._ldm_fit(mb, nb, kb):
                            continue
                        alt = plan._cost_for(GemmBlocking(mb, nb, kb))
                        assert chosen <= alt.total_s * (1 + 1e-12)

    def test_traffic_includes_panel_rereads(self):
        plan = SWGemmPlan(1024, 1024, 1024, dtype_bytes=4)
        blk = plan.blocking
        n_blocks = -(-1024 // blk.nb)
        m_blocks = -(-1024 // blk.mb)
        expected = (
            n_blocks * 1024 * 1024 * 4 + m_blocks * 1024 * 1024 * 4 + 2 * 1024 * 1024 * 4
        )
        assert plan.traffic_bytes() == pytest.approx(expected)

    def test_cost_positive_and_finite(self):
        cost = SWGemmPlan(100, 100, 100).cost()
        assert 0 < cost.total_s < 1.0
        assert cost.total_s >= max(cost.compute_s, cost.dma_s, cost.rlc_s)

    def test_rlc_overlaps_under_compute_for_big_gemm(self):
        cost = SWGemmPlan(2048, 2048, 2048, dtype_bytes=8).cost()
        assert cost.rlc_s < cost.compute_s
