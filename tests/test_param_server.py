"""Tests for the parameter-server baseline (the scheme the paper rejects)."""

import numpy as np
import pytest

from repro.frame.layers import DataLayer, InnerProductLayer, ReLULayer, SoftmaxWithLossLayer
from repro.frame.net import Net
from repro.parallel import DistributedTrainer
from repro.parallel.param_server import ParameterServerModel, ParameterServerTrainer
from repro.parallel.ssgd import SSGDIterationModel
from repro.utils.rng import seeded_rng

from tests.test_distributed_trainer import ShardSource, make_batches


def build_net(source, batch, classes=3):
    net = Net("ps")
    net.add(DataLayer("data", source, batch), bottoms=[], tops=["data", "label"])
    net.add(InnerProductLayer("ip1", 8, rng=seeded_rng(41)), ["data"], ["h"])
    net.add(ReLULayer("r"), ["h"], ["a"])
    net.add(InnerProductLayer("ip2", classes, rng=seeded_rng(42)), ["a"], ["logits"])
    net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
    return net


class TestTimingModel:
    def test_ingestion_scales_linearly_with_workers(self):
        m = ParameterServerModel(model_bytes=100e6, n_servers=8)
        t64 = m.sync_time(64)
        t128 = m.sync_time(128)
        assert t128 == pytest.approx(2 * t64, rel=1e-6)

    def test_more_servers_help(self):
        few = ParameterServerModel(model_bytes=100e6, n_servers=2)
        many = ParameterServerModel(model_bytes=100e6, n_servers=32)
        assert many.sync_time(256) < few.sync_time(256)

    def test_single_worker_free(self):
        assert ParameterServerModel(model_bytes=1e6).sync_time(1) == 0.0
        with pytest.raises(ValueError):
            ParameterServerModel(model_bytes=1e6).sync_time(0)

    def test_allreduce_wins_at_scale(self):
        """The paper's argument: per-server ingestion grows linearly with
        workers while the allreduce grows logarithmically (plus a fixed
        bandwidth term), so allreduce must win at TaihuLight scale."""
        model_bytes = 232.6e6
        ps = ParameterServerModel(model_bytes=model_bytes, n_servers=16)
        ssgd = SSGDIterationModel(compute_s=1.0, model_bytes=model_bytes)
        crossover = ps.crossover_vs_allreduce(ssgd.allreduce_time)
        assert crossover is not None and crossover <= 1024
        assert ps.sync_time(1024) > 3 * ssgd.allreduce_time(1024)


class TestFunctionalEquivalence:
    def test_ps_training_equals_allreduce_training(self):
        n_workers, per_worker, classes, steps = 4, 3, 3, 4
        data = make_batches(steps, n_workers, per_worker, dim=5, classes=classes, seed=8)

        def shard(rank):
            return ShardSource(
                [
                    (img[rank * per_worker : (rank + 1) * per_worker],
                     lab[rank * per_worker : (rank + 1) * per_worker])
                    for img, lab in data
                ]
            )

        ps = ParameterServerTrainer(
            net_factory=lambda r: build_net(shard(r), per_worker, classes),
            n_workers=n_workers,
            n_servers=3,
            base_lr=0.05,
            momentum=0.9,
        )
        ps.step(steps)
        assert ps.replicas_in_sync(atol=1e-6)

        ar = DistributedTrainer(
            net_factory=lambda r: build_net(shard(r), per_worker, classes),
            n_workers=n_workers,
            algorithm="rhd",
            base_lr=0.05,
            momentum=0.9,
        )
        ar.step(steps)
        for pp, ap in zip(ps.nets[0].params, ar.nets[0].params):
            np.testing.assert_allclose(pp.data, ap.data, rtol=1e-4, atol=1e-6)

    def test_sync_time_accumulates(self):
        data = make_batches(2, 2, 3, dim=5, classes=3)

        def shard(rank):
            return ShardSource(
                [(img[rank * 3 : (rank + 1) * 3], lab[rank * 3 : (rank + 1) * 3]) for img, lab in data]
            )

        ps = ParameterServerTrainer(
            net_factory=lambda r: build_net(shard(r), 3), n_workers=2, n_servers=2
        )
        stats = ps.step(2)
        assert stats.iterations == 2
        assert stats.simulated_sync_s > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterServerTrainer(lambda r: None, n_workers=0)
