"""Tests for shared utilities: units, RNG derivation, tables."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    GB,
    KiB,
    MiB,
    Table,
    derive_rng,
    format_bytes,
    format_rate,
    format_time,
    seeded_rng,
)


class TestUnits:
    def test_binary_vs_decimal(self):
        assert KiB == 1024
        assert MiB == 1024 * 1024
        assert GB == 1_000_000_000

    @pytest.mark.parametrize(
        "n,expected",
        [(512, "512 B"), (1536, "1.5 KiB"), (3 * MiB, "3 MiB"), (2 * 1024**3, "2 GiB")],
    )
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected

    @pytest.mark.parametrize(
        "t,expected",
        [(2.0, "2 s"), (3.2e-3, "3.2 ms"), (4.5e-6, "4.5 us"), (7e-9, "7 ns")],
    )
    def test_format_time(self, t, expected):
        assert format_time(t) == expected

    def test_format_rate(self):
        assert format_rate(28e9) == "28 GB/s"
        assert format_rate(5e6) == "5 MB/s"


class TestRng:
    def test_seeded_rng_reproducible(self):
        a = seeded_rng(5).integers(0, 1000, size=10)
        b = seeded_rng(5).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_default_seed_stable(self):
        a = seeded_rng().random(4)
        b = seeded_rng().random(4)
        np.testing.assert_array_equal(a, b)

    def test_derive_rng_differs_by_key(self):
        parent1 = seeded_rng(1)
        parent2 = seeded_rng(1)
        a = derive_rng(parent1, "layer", 0).random(4)
        b = derive_rng(parent2, "layer", 1).random(4)
        assert not np.allclose(a, b)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_derive_rng_deterministic(self, key):
        a = derive_rng(seeded_rng(2), key).random(3)
        b = derive_rng(seeded_rng(2), key).random(3)
        np.testing.assert_array_equal(a, b)


class TestLogging:
    def test_namespaced_loggers(self):
        from repro.utils.logging import configure, get_logger

        root = get_logger()
        child = get_logger("harness.fig10")
        assert root.name == "repro"
        assert child.name == "repro.harness.fig10"
        configure()
        configure()  # idempotent
        assert len(root.handlers) == 1


class TestTable:
    def test_render_aligns_columns(self):
        t = Table(headers=["name", "value"], title="demo")
        t.add_row("alpha", 1.5)
        t.add_row("b", 12345.678)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert all(len(l) == len(lines[1]) for l in lines[1:])
        assert "alpha" in text

    def test_row_width_checked(self):
        t = Table(headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_extend(self):
        t = Table(headers=["x"])
        t.extend([[1], [2], [3]])
        assert len(t.rows) == 3

    def test_float_formatting(self):
        t = Table(headers=["v"])
        t.add_row(0.000123)
        t.add_row(1234567.0)
        t.add_row(0.0)
        assert t.rows[0][0] == "1.230e-04"
        assert t.rows[1][0] == "1.235e+06"
        assert t.rows[2][0] == "0"
