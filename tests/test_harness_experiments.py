"""Shape tests for the heavyweight experiment harnesses.

These pin the paper's qualitative results: Table II's plan winners and
availability pattern, Table III's throughput ordering and ratios, the
Fig. 8/9 per-layer structure, and the Fig. 10/11 scaling behaviour. Module-
scoped fixtures keep the expensive net builds to one per module.
"""

import pytest

from repro.harness import (
    ablations,
    fig8_alexnet_layers,
    fig10_scalability,
    table2_vgg_conv,
    table3_throughput,
)


@pytest.fixture(scope="module")
def table2_rows():
    return table2_vgg_conv.generate()


@pytest.fixture(scope="module")
def table3_rows():
    return table3_throughput.generate()


@pytest.fixture(scope="module")
def fig8_rows():
    return fig8_alexnet_layers.generate()


@pytest.fixture(scope="module")
def scaling_points():
    return fig10_scalability.generate()


class TestTable2:
    def test_implicit_availability_pattern(self, table2_rows):
        """Paper's '-' cells: conv1_1 has no implicit plan at all; conv1_2
        and conv2_1 lack implicit backward; conv2_2 onward has everything."""
        rows = {r.name: r for r in table2_rows}
        assert rows["1_1"].forward.implicit_s is None
        assert rows["1_2"].forward.implicit_s is not None
        assert rows["1_2"].weight_diff.implicit_s is None
        assert rows["2_1"].weight_diff.implicit_s is None
        assert rows["2_2"].weight_diff.implicit_s is not None
        assert rows["2_2"].in_diff.implicit_s is not None

    def test_conv1_1_has_no_input_gradient(self, table2_rows):
        rows = {r.name: r for r in table2_rows}
        assert rows["1_1"].in_diff.gflops is None  # the paper's "NA"

    def test_forward_winners_match_paper(self, table2_rows):
        """Implicit wins {1_2, 2_1, 2_2, 5_x}; explicit wins {3_x, 4_x}."""
        rows = {r.name: r for r in table2_rows}
        implicit_wins = {"1_2", "2_1", "2_2", "5_1", "5_2", "5_3"}
        explicit_wins = {"1_1", "3_1", "3_2", "3_3", "4_1", "4_2", "4_3"}
        for name in implicit_wins:
            assert rows[name].forward.winner == "implicit", name
        for name in explicit_wins:
            assert rows[name].forward.winner == "explicit", name

    def test_input_gradient_winner_is_implicit_when_available(self, table2_rows):
        for r in table2_rows:
            if r.in_diff.implicit_s is not None:
                assert r.in_diff.winner == "implicit", r.name

    def test_gflops_rise_with_depth(self, table2_rows):
        """Paper: ~5 Gflops on conv1_1 rising to ~415 at conv3_2."""
        rows = {r.name: r for r in table2_rows}
        assert rows["1_1"].forward.gflops < 30
        assert rows["3_2"].forward.gflops > 300
        assert rows["1_1"].forward.gflops < rows["2_2"].forward.gflops < rows["3_2"].forward.gflops

    def test_implicit_forward_times_near_paper(self, table2_rows):
        """Calibration anchors: implicit fwd within 15% of the paper."""
        paper = {"1_2": 4.30, "2_2": 2.34, "3_2": 1.79, "4_2": 1.68, "5_1": 0.40}
        rows = {r.name: r for r in table2_rows}
        for name, expected in paper.items():
            got = rows[name].forward.implicit_s
            assert abs(got - expected) / expected < 0.15, (name, got, expected)

    def test_render(self, table2_rows):
        text = table2_vgg_conv.render(table2_rows)
        assert "conv" in text and "Gflops" in text


class TestTable3:
    def test_all_five_networks(self, table3_rows):
        assert {r.network for r in table3_rows} == {
            "AlexNet", "VGG-16", "VGG-19", "ResNet-50", "GoogleNet",
        }

    def test_sw_beats_gpu_only_on_alexnet(self, table3_rows):
        rows = {r.network: r for r in table3_rows}
        assert rows["AlexNet"].sw_over_gpu > 1.0
        for name in ("VGG-16", "VGG-19", "ResNet-50", "GoogleNet"):
            assert rows[name].sw_over_gpu < 1.0, name

    def test_vgg_ratios_near_half(self, table3_rows):
        rows = {r.network: r for r in table3_rows}
        assert 0.3 < rows["VGG-16"].sw_over_gpu < 0.6
        assert 0.3 < rows["VGG-19"].sw_over_gpu < 0.6

    def test_small_channel_nets_are_weakest_vs_gpu(self, table3_rows):
        """Paper: ResNet-50 and GoogLeNet reach only ~0.2x of the GPU."""
        rows = {r.network: r for r in table3_rows}
        assert rows["GoogleNet"].sw_over_gpu < rows["VGG-16"].sw_over_gpu
        assert rows["GoogleNet"].sw_over_gpu < 0.3

    def test_sw_beats_cpu_everywhere(self, table3_rows):
        for r in table3_rows:
            assert r.sw_over_cpu > 1.0, r.network

    def test_sw_absolute_throughputs_near_paper(self, table3_rows):
        """SW img/s within a factor ~2 of the paper's column."""
        paper = {
            "AlexNet": 94.17, "VGG-16": 6.21, "VGG-19": 5.52,
            "ResNet-50": 5.56, "GoogleNet": 14.97,
        }
        rows = {r.network: r for r in table3_rows}
        for name, expected in paper.items():
            got = rows[name].sw_img_s
            assert expected / 2 < got < expected * 2, (name, got, expected)

    def test_render(self, table3_rows):
        assert "img/sec" in table3_throughput.render(table3_rows)


class TestFig8:
    def test_bandwidth_bound_layers_slower_on_sw(self, fig8_rows):
        """Pooling/ReLU/BN layers hide in the GPU's 288 GB/s but cost real
        time on SW26010 — every one must be slower on SW."""
        for r in fig8_rows:
            if r.type in ("Pooling", "ReLU", "BatchNorm", "Dropout"):
                assert r.sw_forward_s > r.gpu_forward_s, r.name

    def test_conv2_faster_on_sw(self, fig8_rows):
        """The 5x5 conv2 is one of the layers where SW26010 wins in Fig. 8."""
        rows = {r.name: r for r in fig8_rows}
        assert rows["conv2"].sw_forward_s < rows["conv2"].gpu_forward_s

    def test_first_conv_slower_on_sw(self, fig8_rows):
        rows = {r.name: r for r in fig8_rows}
        assert rows["conv1"].sw_forward_s > rows["conv1"].gpu_forward_s

    def test_layer_sequence_matches_figure(self, fig8_rows):
        names = [r.name for r in fig8_rows]
        for expected in ("conv1", "conv1/bn", "relu1", "pool1", "fc6", "fc8"):
            assert expected in names


class TestFig10and11:
    def test_speedups_monotone_in_nodes(self, scaling_points):
        for label in {p.label for p in scaling_points}:
            curve = sorted(
                (p for p in scaling_points if p.label == label),
                key=lambda p: p.n_nodes,
            )
            speedups = [p.speedup for p in curve]
            assert all(a < b for a, b in zip(speedups, speedups[1:])), label

    def test_speedups_sublinear(self, scaling_points):
        for p in scaling_points:
            assert p.speedup < p.n_nodes

    def test_alexnet_batch_ordering(self, scaling_points):
        """Fig. 10: at 1024 nodes, larger sub-mini-batch scales better."""
        at_1024 = {p.label: p for p in scaling_points if p.n_nodes == 1024}
        assert (
            at_1024["AlexNet, B=64"].speedup
            < at_1024["AlexNet, B=128"].speedup
            < at_1024["AlexNet, B=256"].speedup
        )

    def test_resnet_scales_better_than_alexnet(self, scaling_points):
        """Paper: ResNet-50's smaller model / heavier compute -> better
        scalability (928x vs 715x at 1024 nodes)."""
        at_1024 = {p.label: p for p in scaling_points if p.n_nodes == 1024}
        assert at_1024["ResNet50, B=32"].speedup > at_1024["AlexNet, B=256"].speedup

    def test_endpoint_speedups_near_paper(self, scaling_points):
        at_1024 = {p.label: p for p in scaling_points if p.n_nodes == 1024}
        assert 400 < at_1024["AlexNet, B=64"].speedup < 750
        assert 550 < at_1024["AlexNet, B=256"].speedup < 850
        assert 800 < at_1024["ResNet50, B=32"].speedup < 970

    def test_comm_fraction_monotone_and_ordered(self, scaling_points):
        at_1024 = {p.label: p for p in scaling_points if p.n_nodes == 1024}
        # Fig. 11: smaller batches pay a larger communication share.
        assert (
            at_1024["AlexNet, B=64"].comm_fraction
            > at_1024["AlexNet, B=128"].comm_fraction
            > at_1024["AlexNet, B=256"].comm_fraction
        )
        # AlexNet's 232.6 MB model communicates more than ResNet's 97.7 MB.
        assert (
            at_1024["AlexNet, B=256"].comm_fraction
            > at_1024["ResNet50, B=64"].comm_fraction
        )

    def test_comm_fraction_ranges(self, scaling_points):
        at_1024 = {p.label: p for p in scaling_points if p.n_nodes == 1024}
        assert 0.30 < at_1024["AlexNet, B=64"].comm_fraction < 0.65
        assert 0.18 < at_1024["AlexNet, B=256"].comm_fraction < 0.35
        assert 0.05 < at_1024["ResNet50, B=32"].comm_fraction < 0.20


class TestAblations:
    def test_every_design_choice_pays_off(self):
        for result in ablations.generate():
            assert result.gain > 1.0, result.name

    def test_io_striping_gain_is_large(self):
        r = ablations.io_striping_ablation()
        assert r.gain > 10

    def test_render(self):
        assert "gain" in ablations.render([ablations.io_striping_ablation()])


class TestFig11Overlap:
    """The bucketed-overlap variant of the Fig. 11 sweep."""

    @pytest.fixture(scope="class")
    def bucketed_points(self):
        return fig10_scalability.generate(bucket_mb=96.0)

    def test_exposed_comm_strictly_below_fused_at_16_plus(
        self, scaling_points, bucketed_points
    ):
        fused = {(p.label, p.n_nodes): p for p in scaling_points}
        bucketed = {(p.label, p.n_nodes): p for p in bucketed_points}
        for (label, n), fp in fused.items():
            if n < 16:
                continue
            bp = bucketed[(label, n)]
            assert bp.comm_fraction < fp.comm_fraction, (label, n)
            assert bp.overlap_hidden_s > 0.0, (label, n)
            assert bp.iteration_s < fp.iteration_s, (label, n)

    def test_fused_points_report_no_hidden_time(self, scaling_points):
        assert all(p.overlap_hidden_s == 0.0 for p in scaling_points)

    def test_overlap_render_compares_both_sweeps(self):
        from repro.harness import fig11_comm_ratio

        out = fig11_comm_ratio.render_overlap(96.0)
        assert "fused" in out and "bucketed" in out
        assert "hidden behind backward" in out
