"""Unit tests for the SW26010 hardware model basics: specs, clock, LDM."""

import pytest

from repro.errors import LDMAllocationError
from repro.hw import (
    E5_2680V3_SPEC,
    K40M_SPEC,
    KNL_SPEC,
    SW26010_SPEC,
    SW_PARAMS,
    LDMAllocator,
    SimClock,
)


class TestSpecs:
    def test_table1_rows_match_paper(self):
        assert SW26010_SPEC.release_year == 2014
        assert SW26010_SPEC.peak_double == pytest.approx(3.02e12)
        assert K40M_SPEC.peak_single == pytest.approx(4.29e12)
        assert K40M_SPEC.peak_double == pytest.approx(1.43e12)
        assert KNL_SPEC.mem_bandwidth == pytest.approx(475e9)
        assert E5_2680V3_SPEC.mem_bandwidth == pytest.approx(68e9)

    def test_sw_params_geometry(self):
        assert SW_PARAMS.n_cpes_per_cg == 64
        assert SW_PARAMS.ldm_bytes == 64 * 1024
        assert SW_PARAMS.n_core_groups == 4

    def test_cpe_peak_is_cluster_fraction(self):
        assert SW_PARAMS.cpe_peak_flops == pytest.approx(742.4e9 / 64)

    def test_flop_per_byte_matches_paper(self):
        # Principle 3: 742.4 GFlops / 28 GB/s = 26.5
        assert SW_PARAMS.flop_per_byte == pytest.approx(26.5, rel=0.01)

    def test_machine_balance_ordering(self):
        # SW26010's flop/byte is far above K40m's and KNL's (paper: 26.5
        # vs 14.90 and 14.56).
        assert (
            SW_PARAMS.flop_per_byte
            > K40M_SPEC.flop_per_byte_single
            > KNL_SPEC.flop_per_byte_single
        )


class TestSimClock:
    def test_advance_accumulates(self):
        clk = SimClock()
        clk.advance(1.5)
        clk.advance(0.5)
        assert clk.now == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        clk = SimClock()
        with pytest.raises(ValueError):
            clk.advance(-1.0)

    def test_sections_categorize(self):
        clk = SimClock()
        with clk.section("dma"):
            clk.advance(1.0)
            with clk.section("compute"):
                clk.advance(2.0)
            clk.advance(0.5)
        clk.advance(0.25)
        assert clk.category_total("dma") == pytest.approx(1.5)
        assert clk.category_total("compute") == pytest.approx(2.0)
        assert clk.category_total("other") == pytest.approx(0.25)
        assert clk.now == pytest.approx(3.75)

    def test_explicit_category_overrides_section(self):
        clk = SimClock()
        with clk.section("dma"):
            clk.advance(1.0, category="rlc")
        assert clk.category_total("rlc") == pytest.approx(1.0)
        assert clk.category_total("dma") == 0.0

    def test_merge_max_takes_slowest(self):
        parent, a, b = SimClock(), SimClock(), SimClock()
        a.advance(1.0, category="compute")
        b.advance(3.0, category="dma")
        dt = parent.merge_max(a, b)
        assert dt == pytest.approx(3.0)
        assert parent.now == pytest.approx(3.0)
        assert parent.category_total("dma") == pytest.approx(3.0)

    def test_reset(self):
        clk = SimClock()
        clk.advance(1.0)
        clk.reset()
        assert clk.now == 0.0
        assert clk.breakdown() == {}


class TestLDMAllocator:
    def test_capacity_default_64k(self):
        ldm = LDMAllocator()
        assert ldm.capacity == 64 * 1024

    def test_alloc_and_free(self):
        ldm = LDMAllocator(1024)
        buf = ldm.alloc("a", 512)
        assert buf.offset == 0
        assert ldm.used == 512
        ldm.free_buffer("a")
        assert ldm.used == 0

    def test_overflow_raises(self):
        ldm = LDMAllocator(1024)
        ldm.alloc("a", 1000)
        with pytest.raises(LDMAllocationError):
            ldm.alloc("b", 100)

    def test_duplicate_name_raises(self):
        ldm = LDMAllocator(1024)
        ldm.alloc("a", 10)
        with pytest.raises(LDMAllocationError):
            ldm.alloc("a", 10)

    def test_require_is_idempotent(self):
        ldm = LDMAllocator(1024)
        b1 = ldm.require("a", 100)
        b2 = ldm.require("a", 100)
        assert b1 == b2
        assert ldm.used == 100
        with pytest.raises(LDMAllocationError):
            ldm.require("a", 200)

    def test_high_water_mark(self):
        ldm = LDMAllocator(1024)
        ldm.alloc("a", 600)
        ldm.free_buffer("a")
        ldm.alloc("b", 100)
        assert ldm.high_water == 600

    def test_free_unknown_raises(self):
        ldm = LDMAllocator(1024)
        with pytest.raises(LDMAllocationError):
            ldm.free_buffer("nope")

    def test_fits(self):
        ldm = LDMAllocator(1024)
        ldm.alloc("a", 1000)
        assert ldm.fits(24)
        assert not ldm.fits(25)

    def test_reset_preserves_high_water(self):
        ldm = LDMAllocator(1024)
        ldm.alloc("a", 800)
        ldm.reset()
        assert ldm.used == 0
        assert ldm.high_water == 800
        assert "a" not in ldm
