"""Tests for the CLI entry point and multi-loss (auxiliary head) support."""

import numpy as np
import pytest

from repro.__main__ import EXPERIMENTS, NETWORKS, main
from repro.frame.layers import (
    DataLayer,
    EuclideanLossLayer,
    InnerProductLayer,
    SoftmaxWithLossLayer,
)
from repro.frame.net import Net
from repro.frame.solver import SGDSolver
from repro.io.dataset import SyntheticImageNet
from repro.utils.rng import seeded_rng


class TestCLI:
    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "usage" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "resnet50" in out

    def test_experiment_runs_light_harness(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "SW26010" in capsys.readouterr().out

    def test_experiment_validates_name(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_profile_lenet(self, capsys):
        assert main(["profile", "lenet", "8"]) == 0
        assert "bottleneck" in capsys.readouterr().out

    def test_train(self, capsys):
        assert main(["train", "3"]) == 0
        assert "trained LeNet" in capsys.readouterr().out

    def test_registries_complete(self):
        assert "ablations" in EXPERIMENTS
        assert set(NETWORKS) >= {"lenet", "alexnet", "vgg16", "resnet50", "googlenet"}


class TestMultiLoss:
    def build(self, aux_weight):
        src = SyntheticImageNet(num_classes=3, sample_shape=(6,), noise=0.2, seed=13)
        net = Net("multiloss")
        net.add(DataLayer("data", src, 8), [], ["data", "label"])
        net.add(InnerProductLayer("trunk", 8, rng=seeded_rng(1)), ["data"], ["trunk"])
        net.add(InnerProductLayer("head_a", 3, rng=seeded_rng(2)), ["trunk"], ["logits_a"])
        net.add(InnerProductLayer("head_b", 3, rng=seeded_rng(3)), ["trunk"], ["logits_b"])
        main_loss = SoftmaxWithLossLayer("loss_a")
        net.add(main_loss, ["logits_a", "label"], ["loss_a"])
        aux = SoftmaxWithLossLayer("loss_b")
        aux.loss_weight = aux_weight
        net.add(aux, ["logits_b", "label"], ["loss_b"])
        return net

    def test_reported_losses_are_weighted(self):
        net = self.build(aux_weight=0.3)
        losses = net.forward()
        raw_b = float(net.blobs["loss_b"].data[0])
        assert losses["loss_b"] == pytest.approx(0.3 * raw_b, rel=1e-6)

    def test_zero_weight_contributes_no_gradient(self):
        net = self.build(aux_weight=0.0)
        net.forward()
        net.backward()
        head_b = net.layer_by_name("head_b")
        assert float(np.abs(head_b.weight.diff).sum()) == 0.0
        head_a = net.layer_by_name("head_a")
        assert float(np.abs(head_a.weight.diff).sum()) > 0.0

    def test_aux_gradient_scales_linearly(self):
        grads = {}
        for w in (0.3, 0.6):
            net = self.build(aux_weight=w)
            net.forward()
            net.backward()
            grads[w] = net.layer_by_name("head_b").weight.diff.copy()
        np.testing.assert_allclose(grads[0.6], 2 * grads[0.3], rtol=1e-5)

    def test_trunk_receives_both_losses(self):
        # Trunk gradient with both heads != gradient with aux disabled.
        with_aux = self.build(aux_weight=1.0)
        with_aux.forward(); with_aux.backward()
        g_with = with_aux.layer_by_name("trunk").weight.diff.copy()
        without = self.build(aux_weight=0.0)
        without.forward(); without.backward()
        g_without = without.layer_by_name("trunk").weight.diff.copy()
        assert not np.allclose(g_with, g_without)

    def test_googlenet_aux_heads_build_and_backprop(self):
        from repro.frame.model_zoo import googlenet

        net = googlenet.build(batch_size=1, aux_heads=True)
        loss_layers = [l for l in net.layers if getattr(l, "is_loss", False)]
        assert len(loss_layers) == 3
        weights = sorted(l.loss_weight for l in loss_layers)
        assert weights == [0.3, 0.3, 1.0]

    def test_multiloss_training_descends(self):
        net = self.build(aux_weight=0.3)
        solver = SGDSolver(net, base_lr=0.05)
        stats = solver.step(20)
        assert stats.losses[-1] < stats.losses[0]
