"""Tests for the net profiler and the ResNet-18/34 zoo additions."""

import pytest

from repro.frame.model_zoo import lenet
from repro.frame.model_zoo.resnet_small import build_resnet18, build_resnet34
from repro.utils.profiler import NetProfiler


class TestNetProfiler:
    @pytest.fixture(scope="class")
    def net(self):
        return lenet.build(batch_size=8)

    def test_profiles_every_layer(self, net):
        profiler = NetProfiler(net)
        profiles = profiler.profile()
        assert len(profiles) == len(net.layers)
        assert all(p.total_s >= 0 for p in profiles)

    def test_totals_consistent(self, net):
        profiler = NetProfiler(net)
        profiles = profiler.profile()
        agg = profiler.totals(profiles)
        assert agg["total"] == pytest.approx(sum(p.total_s for p in profiles))
        assert agg["total"] == pytest.approx(net.sw_iteration_time(), rel=1e-9)

    def test_top_layers_sorted(self, net):
        top = NetProfiler(net).top_layers(3)
        assert len(top) == 3
        assert top[0].total_s >= top[1].total_s >= top[2].total_s

    def test_bottleneck_labels(self, net):
        for p in NetProfiler(net).profile():
            assert p.bottleneck in ("compute", "dma", "rlc", "overhead")

    def test_render(self, net):
        text = NetProfiler(net).render()
        assert "profile" in text
        assert "iteration=" in text


class TestSmallResNets:
    def test_resnet18_parameters(self):
        net = build_resnet18(batch_size=1)
        n = sum(p.count for p in net.params)
        assert abs(n - 11.69e6) < 0.2e6

    def test_resnet34_parameters(self):
        net = build_resnet34(batch_size=1)
        n = sum(p.count for p in net.params)
        assert abs(n - 21.8e6) < 0.3e6

    def test_resnet18_topology(self):
        net = build_resnet18(batch_size=1)
        adds = [l for l in net.layers if l.type == "Eltwise"]
        assert len(adds) == 8  # 2+2+2+2 basic blocks
        assert net.blobs["pool5"].shape == (1, 512, 1, 1)

    def test_resnet18_faster_than_resnet34(self):
        t18 = build_resnet18(batch_size=8).sw_iteration_time()
        t34 = build_resnet34(batch_size=8).sw_iteration_time()
        assert t18 < t34

    def test_bad_depth(self):
        from repro.frame.model_zoo.resnet_small import _build

        with pytest.raises(ValueError):
            _build(50, 1, 10, None, None, False)
