"""Tests for pooling, layout transform, elementwise plans and PlanCost."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError, ShapeError
from repro.kernels import (
    ElementwisePlan,
    PoolingPlan,
    TensorTransformPlan,
)
from repro.kernels.plan import PlanCost, combine_sequential


def reference_pool(x, k, stride, pad, mode):
    b, c, h, w = x.shape
    ho = (h + 2 * pad - k) // stride + 1
    wo = (w + 2 * pad - k) // stride + 1
    fill = -np.inf if mode == "max" else 0.0
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), constant_values=fill)
    out = np.zeros((b, c, ho, wo))
    for i in range(ho):
        for j in range(wo):
            win = xp[:, :, i * stride : i * stride + k, j * stride : j * stride + k]
            out[:, :, i, j] = win.max(axis=(2, 3)) if mode == "max" else win.mean(axis=(2, 3))
    return out


class TestPooling:
    @settings(max_examples=15, deadline=None)
    @given(
        b=st.integers(min_value=1, max_value=2),
        c=st.integers(min_value=1, max_value=3),
        hw=st.integers(min_value=4, max_value=9),
        k=st.integers(min_value=2, max_value=3),
        stride=st.integers(min_value=1, max_value=3),
        mode=st.sampled_from(["max", "avg"]),
    )
    def test_forward_matches_reference(self, b, c, hw, k, stride, mode):
        rng = np.random.default_rng(b * 100 + hw)
        x = rng.normal(size=(b, c, hw, hw))
        plan = PoolingPlan(b, c, hw, hw, k, stride, 0, mode)
        out, _ = plan.forward(x)
        np.testing.assert_allclose(out, reference_pool(x, k, stride, 0, mode), rtol=1e-12)

    def test_max_backward_routes_to_argmax(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        plan = PoolingPlan(1, 1, 2, 2, 2)
        out, arg = plan.forward(x)
        assert out[0, 0, 0, 0] == 4.0
        dy = np.array([[[[5.0]]]])
        dx = plan.backward(x, dy, arg)
        expected = np.zeros((1, 1, 2, 2))
        expected[0, 0, 1, 1] = 5.0
        np.testing.assert_array_equal(dx, expected)

    def test_avg_backward_spreads_evenly(self):
        x = np.ones((1, 1, 4, 4))
        plan = PoolingPlan(1, 1, 4, 4, 2, mode="avg")
        out, arg = plan.forward(x)
        dy = np.ones((1, 1, 2, 2))
        dx = plan.backward(x, dy, arg)
        np.testing.assert_allclose(dx, np.full((1, 1, 4, 4), 0.25))

    def test_max_backward_numerical(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(2, 3, 6, 6))
        plan = PoolingPlan(2, 3, 6, 6, 2, stride=2)
        out, arg = plan.forward(x)
        dy = rng.normal(size=out.shape)
        dx = plan.backward(x, dy, arg)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (1, 2, 3, 3), (0, 1, 5, 5)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fp = np.sum(plan.forward(xp)[0] * dy)
            fm = np.sum(plan.forward(xm)[0] * dy)
            assert dx[idx] == pytest.approx((fp - fm) / (2 * eps), rel=1e-4, abs=1e-8)

    def test_overlapping_pool_with_pad(self):
        # AlexNet-style 3x3/stride-2 overlapping pooling.
        rng = np.random.default_rng(9)
        x = rng.normal(size=(1, 2, 7, 7))
        plan = PoolingPlan(1, 2, 7, 7, 3, stride=2, pad=1)
        out, _ = plan.forward(x)
        np.testing.assert_allclose(out, reference_pool(x, 3, 2, 1, "max"), rtol=1e-12)

    def test_cost_is_bandwidth_dominated(self):
        plan = PoolingPlan(32, 64, 112, 112, 2, 2)
        cost = plan.cost()
        assert cost.dma_s > cost.compute_s

    def test_invalid_mode(self):
        with pytest.raises(PlanError):
            PoolingPlan(1, 1, 4, 4, 2, mode="median")


class TestTransform:
    def test_round_trip_identity(self):
        rng = np.random.default_rng(0)
        shape = (3, 5, 7, 2)
        x = rng.normal(size=shape)
        to_imp = TensorTransformPlan(shape, to_implicit=True)
        to_exp = TensorTransformPlan(shape, to_implicit=False)
        y = to_imp.run(x)
        assert y.shape == (7, 2, 5, 3)  # (R, C, N, B)
        np.testing.assert_array_equal(to_exp.run(y), x)

    def test_layout_values(self):
        x = np.arange(2 * 3 * 4 * 5).reshape(2, 3, 4, 5)
        y = TensorTransformPlan(x.shape).run(x)
        # y[r, c, n, b] == x[b, n, r, c]
        assert y[1, 2, 0, 1] == x[1, 0, 1, 2]

    def test_cost_scales_with_size(self):
        small = TensorTransformPlan((2, 16, 8, 8)).cost()
        big = TensorTransformPlan((8, 64, 16, 16)).cost()
        assert big.total_s > small.total_s
        assert big.dma_bytes == 2 * 8 * 64 * 16 * 16 * 4

    def test_shape_validation(self):
        with pytest.raises(PlanError):
            TensorTransformPlan((0, 1, 2, 3))
        plan = TensorTransformPlan((2, 3, 4, 5))
        with pytest.raises(ShapeError):
            plan.run(np.zeros((2, 3, 4, 6)))


class TestElementwise:
    def test_for_tensor_traffic(self):
        plan = ElementwisePlan.for_tensor(1000, n_inputs=2, n_outputs=1)
        assert plan.read_bytes == 8000
        assert plan.write_bytes == 4000

    def test_bandwidth_bound(self):
        plan = ElementwisePlan.for_tensor(1 << 20, flops_per_element=1.0)
        cost = plan.cost()
        assert cost.dma_s > cost.compute_s
        assert cost.total_s == pytest.approx(cost.dma_s)

    def test_zero_work_is_free(self):
        assert ElementwisePlan(0, 0, 0).cost().total_s == 0.0

    def test_validation(self):
        with pytest.raises(PlanError):
            ElementwisePlan(-1, 0)
        with pytest.raises(PlanError):
            ElementwisePlan(0, 0, compute_efficiency=0.0)


class TestPlanCost:
    def test_total_is_overlapped_max(self):
        c = PlanCost(compute_s=2.0, dma_s=3.0, rlc_s=1.0, overhead_s=0.5)
        assert c.total_s == pytest.approx(3.5)

    def test_serial_sums_everything(self):
        c = PlanCost(compute_s=2.0, dma_s=3.0, rlc_s=1.0, overhead_s=0.5)
        assert c.serial_s == pytest.approx(6.5)

    def test_combine_sequential_preserves_total(self):
        a = PlanCost(compute_s=1.0, dma_s=2.0)
        b = PlanCost(compute_s=3.0, dma_s=0.5)
        combined = combine_sequential([a, b])
        assert combined.total_s == pytest.approx(a.total_s + b.total_s)
        assert combined.compute_s == pytest.approx(4.0)
        assert combined.dma_s == pytest.approx(2.5)

    def test_add_operator(self):
        a = PlanCost(compute_s=1.0, flops=10)
        b = PlanCost(dma_s=2.0, dma_bytes=100)
        c = a + b
        assert c.total_s == pytest.approx(3.0)
        assert c.flops == 10
        assert c.dma_bytes == 100

    def test_gflops(self):
        c = PlanCost(compute_s=1.0, flops=5e9)
        assert c.gflops == pytest.approx(5.0)
        assert PlanCost().gflops == 0.0
