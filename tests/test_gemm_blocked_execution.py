"""Fidelity tests: the blocked GEMM execution against the hardware model.

``run_blocked`` moves real panels through the DMA engine under the LDM
budget and runs the literal register-communication schedule per block —
the strongest evidence that the cost model and the functional algorithm
describe the same kernel.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.kernels import SWGemmPlan
from repro.harness import naive_port


class TestRunBlocked:
    @settings(max_examples=10, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=70),
        k=st.integers(min_value=1, max_value=70),
        n=st.integers(min_value=1, max_value=70),
    )
    def test_matches_matmul(self, m, k, n):
        rng = np.random.default_rng(m * 10007 + k * 101 + n)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        plan = SWGemmPlan(m, n, k, dtype_bytes=8)
        np.testing.assert_allclose(plan.run_blocked(a, b), a @ b, rtol=1e-9)

    def test_multi_block_shapes(self):
        # Force several outer blocks in every dimension.
        rng = np.random.default_rng(3)
        m, k, n = 600, 700, 650
        a = rng.normal(size=(m, k)).astype(np.float32)
        b = rng.normal(size=(k, n)).astype(np.float32)
        plan = SWGemmPlan(m, n, k, dtype_bytes=4)
        blk = plan.blocking
        assert m > blk.mb or n > blk.nb or k > blk.kb  # really multi-block
        # float32 inputs accumulate ~1e-4 absolute error over k=700; entries
        # near zero make pure-relative comparison meaningless.
        np.testing.assert_allclose(
            plan.run_blocked(a, b), (a @ b).astype(np.float32), rtol=1e-3, atol=1e-3
        )

    def test_charges_dma_clock(self):
        rng = np.random.default_rng(0)
        plan = SWGemmPlan(64, 64, 64, dtype_bytes=8)
        before = plan.core_group.clock.now
        plan.run_blocked(rng.normal(size=(64, 64)), rng.normal(size=(64, 64)))
        assert plan.core_group.clock.now > before
        assert plan.core_group.clock.category_total("dma") > 0

    def test_ldm_budget_respected(self):
        rng = np.random.default_rng(1)
        plan = SWGemmPlan(512, 512, 512, dtype_bytes=4)
        plan.run_blocked(
            rng.normal(size=(512, 512)), rng.normal(size=(512, 512))
        )
        ldm = plan.core_group.cpes[0].ldm
        assert 0 < ldm.high_water <= ldm.capacity
        assert ldm.used == 0  # everything freed

    def test_shape_mismatch(self):
        plan = SWGemmPlan(4, 5, 6)
        with pytest.raises(PlanError):
            plan.run_blocked(np.ones((4, 5)), np.ones((5, 5)))


class TestNaivePortHarness:
    def test_swcaffe_beats_both_baselines(self):
        for row in naive_port.generate():
            assert row.swcaffe_s < row.naive_mpe_s, row.kernel
            assert row.swcaffe_s < row.cpe_no_ldm_s, row.kernel

    def test_gemm_naive_gap_is_large(self):
        # Principle 1's point: the MPE is ~64x weaker than the CPE cluster.
        row = naive_port.compare_gemm()
        assert row.speedup_vs_naive > 10

    def test_streaming_punishes_fine_grained_dma(self):
        # Principles 2/3: per-element strided DMA collapses bandwidth.
        row = naive_port.compare_streaming()
        assert row.speedup_vs_no_ldm > 5

    def test_render(self):
        assert "naive" in naive_port.render()
