"""The what-if engine (:mod:`repro.trace.whatif`) and its CLI surface.

The acceptance invariant of the subsystem: a projection is *verifiable* —
re-running the simulator with the same :class:`CostScaling` installed
produces the projected end-to-end time exactly (serial-fabric training
schedules; ``REL_TOL`` otherwise). Also pins the ``--scale`` parser, the
``python -m repro whatif`` exit codes, and the consistency between the
critical path's exposed-collective attribution and the PR-5 overlap
counters (``comm.overlap_exposed_s``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.frame.model_zoo import lenet
from repro.trace.whatif import (
    REL_TOL,
    parse_scales,
    project,
    whatif_training,
)


def _lenet():
    return lenet.build(batch_size=16)


class TestParseScales:
    def test_parses_classes_and_layers(self):
        assert parse_scales(["dma=0.5", "rlc=2.0", "layer:conv1=0.25"]) == {
            "dma": 0.5, "rlc": 2.0, "layer:conv1": 0.25,
        }

    def test_empty_is_identity(self):
        assert parse_scales([]) == {}

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="class=factor"):
            parse_scales(["dma0.5"])

    def test_non_numeric_factor_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            parse_scales(["dma=fast"])

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            parse_scales(["gpu=0.5"])

    def test_non_positive_factor_rejected(self):
        with pytest.raises(ValueError):
            parse_scales(["dma=0"])


class TestTrainingValidation:
    def test_acceptance_case_is_exact(self):
        """lenet, 8 ranks, dma=0.5: projected == simulated, bit for bit."""
        result = whatif_training(_lenet(), {"dma": 0.5}, ranks=8, validate=True)
        v = result.validation
        assert v is not None
        assert v.abs_error_s == 0.0
        assert v.ok

    @pytest.mark.parametrize("factors", [
        {"rlc": 2.0},
        {"collective": 3.0},
        {"layer:conv1": 0.25},
        {"dma": 0.5, "rlc": 2.0, "cpe": 0.8, "overhead": 0.5},
    ])
    def test_factor_sets_validate_exactly(self, factors):
        result = whatif_training(_lenet(), factors, ranks=5, validate=True)
        assert result.validation.abs_error_s == 0.0

    def test_multi_iteration_within_tolerance(self):
        result = whatif_training(
            _lenet(), {"dma": 0.5, "cpe": 0.8}, ranks=4, iterations=3,
            validate=True,
        )
        assert result.validation.rel_error <= REL_TOL
        assert result.validation.ok

    def test_identity_projection_is_noop(self):
        result = whatif_training(_lenet(), {}, ranks=4)
        assert result.projection.projected_s == result.projection.baseline_s
        assert result.projection.speedup == 1.0

    def test_speedup_direction(self):
        faster = whatif_training(_lenet(), {"cpe": 0.5}, ranks=2)
        slower = whatif_training(_lenet(), {"cpe": 2.0}, ranks=2)
        assert faster.projection.speedup > 1.0
        assert slower.projection.speedup < 1.0

    def test_json_schema(self):
        result = whatif_training(_lenet(), {"dma": 0.5}, ranks=2, validate=True)
        obj = result.to_json()
        assert obj["schema"] == "repro-whatif/1"
        assert obj["factors"] == {"dma": 0.5}
        assert obj["validation"]["ok"] is True
        assert obj["critpath"]["schema"] == "repro-critpath/1"
        json.dumps(obj)  # serializable


class TestOverlapCounterConsistency:
    def test_on_path_exposure_matches_overlap_exposed_counter(self):
        """The critical path attributes exactly the collective seconds the
        PR-5 overlap counters report as exposed."""
        from repro.metrics import collecting
        from repro.simmpi import (
            IAllreduceQueue,
            SimComm,
            block_placement,
            rhd_allreduce,
        )
        from repro.topology import TaihuLightFabric
        from repro.trace.critpath import critical_path
        from repro.trace.tracer import tracing

        fabric = TaihuLightFabric(n_nodes=4, nodes_per_supernode=4)
        with tracing() as tr, collecting() as mx:
            comm = SimComm(fabric, block_placement(4, 4))
            queue = IAllreduceQueue(comm, rhd_allreduce, origin_s=0.0)
            # Back-to-back launches: the fabric never idles, so every
            # service window lands on the critical path.
            for k in range(3):
                bufs = [np.ones(4000) for _ in range(4)]
                queue.iallreduce(bufs, ready_s=0.0, tag=f"b{k}")
            barrier = queue.free_s * 0.5
            queue.wait_all(barrier_s=barrier)
        report = critical_path(tr)
        counter = mx.value("comm.overlap_exposed_s")
        assert counter > 0
        assert report.collective_exposed_s == pytest.approx(counter, rel=1e-12)


class TestServingProjection:
    def test_steady_workload_projection_scales_with_batch_factor(self):
        from repro.serve.arrivals import ArrivalPlan
        from repro.serve.costmodel import TableCostModel
        from repro.serve.engine import ServeConfig, ServingEngine
        from repro.trace.tracer import tracing

        requests = ArrivalPlan.from_seed(
            "steady:0xc0ffee:0", rate_rps=250.0, n_requests=6
        ).generate()
        engine = ServingEngine(
            TableCostModel({b: 0.010 for b in range(1, 3)}),
            ServeConfig(max_batch=2, max_wait_s=0.005, queue_bound=4, slo_s=0.05),
        )
        with tracing() as tr:
            engine.run(requests)
        proj = project(tr, {"batch": 2.0})
        assert proj.baseline_s == tr.end_time()
        # The last batch's compute doubles; earlier batches partially hide
        # behind arrival floors, so the makespan grows but less than 2x.
        assert proj.baseline_s < proj.projected_s < 2.0 * proj.baseline_s


class TestCLI:
    def run_main(self, argv):
        from repro.__main__ import main

        return main(argv)

    def test_validate_exits_zero(self, capsys):
        rc = self.run_main(
            ["whatif", "lenet", "--ranks", "2", "--scale", "dma=0.5",
             "--validate"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out

    def test_json_output_is_machine_readable(self, capsys):
        rc = self.run_main(
            ["whatif", "lenet", "--ranks", "2", "--scale", "rlc=2.0", "--json"]
        )
        assert rc == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["schema"] == "repro-whatif/1"

    def test_bad_scale_exits_two(self, capsys):
        rc = self.run_main(["whatif", "lenet", "--scale", "warp=0.5"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_out_writes_report(self, tmp_path, capsys):
        path = tmp_path / "whatif.json"
        rc = self.run_main(
            ["whatif", "lenet", "--ranks", "2", "--scale", "dma=0.5",
             "--validate", "--out", str(path)]
        )
        capsys.readouterr()
        assert rc == 0
        obj = json.loads(path.read_text())
        assert obj["validation"]["ok"] is True

    def test_registered_in_command_registry(self):
        from repro.__main__ import COMMANDS, REGISTRY

        assert "whatif" in REGISTRY
        assert "whatif" in COMMANDS


class TestHarnessSummaries:
    def test_fig10_whatif_summary(self, capsys):
        from repro.harness.fig10_scalability import render_whatif

        text = render_whatif("AlexNet, B=128", 16, bucket_mb=16)
        assert "critical path" in text
        assert "what-if collective=0.5" in text
        assert "matches it by construction" in text

    def test_serving_whatif_summary(self):
        from repro.harness.serving_latency import render_whatif

        text = render_whatif()
        assert "critical path" in text
        assert "what-if batch=0.5" in text
        assert "last completion" in text
