"""Tests for the link-level contention model (deriving beta2 = 4 beta1)."""

import pytest

from repro.topology import TaihuLightFabric
from repro.topology.cost_model import OVERSUBSCRIPTION
from repro.topology.routing import ContentionModel, Flow


@pytest.fixture()
def model():
    return ContentionModel(TaihuLightFabric(n_nodes=512, nodes_per_supernode=256))


class TestSlowdowns:
    def test_intra_supernode_uncontended(self, model):
        flows = [Flow(i, i + 1, 1e6) for i in range(0, 100, 2)]
        assert model.slowdowns(flows) == [1.0] * len(flows)

    def test_full_cross_permutation_is_quarter_rate(self, model):
        """Every node of supernode 0 sending to supernode 1 — the paper's
        over-subscribed pattern — runs at exactly 1/4 rate."""
        assert model.derived_oversubscription() == pytest.approx(OVERSUBSCRIPTION)

    def test_sparse_cross_traffic_uncontended(self, model):
        # Only q/4 nodes crossing fits in the central provisioning.
        q = 256
        flows = [Flow(i, 256 + i, 1e6) for i in range(q // 4)]
        assert max(model.slowdowns(flows)) == pytest.approx(1.0)

    def test_slightly_over_capacity(self, model):
        q = 256
        flows = [Flow(i, 256 + i, 1e6) for i in range(q // 4 + 16)]
        expected = (q // 4 + 16) / (q / OVERSUBSCRIPTION)
        assert max(model.slowdowns(flows)) == pytest.approx(expected)

    def test_nic_serializes_fan_in(self, model):
        # Many senders to one node contend at its port even locally — the
        # parameter-server ingestion problem.
        flows = [Flow(i, 200, 1e6) for i in range(8)]
        assert model.slowdowns(flows) == [8.0] * 8

    def test_step_time_scales_with_contention(self, model):
        one = model.step_time([Flow(0, 1, 1 << 20)])
        q = 256
        crossed = model.step_time([Flow(i, 256 + i, 1 << 20) for i in range(q)])
        assert crossed > 3.5 * one

    def test_empty_step_is_free(self, model):
        assert model.step_time([]) == 0.0

    def test_consistency_with_stepwise_cost_classification(self, model):
        """The analytic RHD pricing marks block-placement steps with
        distance >= q as over-subscribed; the contention model must agree
        that exactly those steps see the 4x slowdown."""
        q = 256
        p = 512
        for d in (256, 128, 64):
            flows = [
                Flow(v, v ^ d, 1e6) for v in range(p) if (v ^ d) > v
            ]
            slow = max(model.slowdowns(flows))
            if d >= q:
                assert slow == pytest.approx(OVERSUBSCRIPTION)
            else:
                assert slow == pytest.approx(1.0)
