"""The conformance harness must be able to *fail*: mutation smoke tests.

A checker that never fires is indistinguishable from no checker, so these
tests feed the differential fuzzer and the invariant battery deliberately
broken plans/collectives and assert each corruption is caught, plus pin
the seed-string reproduction contract.
"""

import numpy as np
import pytest

from repro.kernels.gemm import SWGemmPlan
from repro.kernels.plan import PlanCost
from repro.testing import differential
from repro.testing.differential import (
    max_ulp_diff,
    parse_seed_string,
    run_collective_case,
    run_kernel_case,
    seed_string,
)
from repro.testing.invariants import (
    InvariantViolation,
    check_cost_sane,
    check_dma_conserved,
    check_monotone,
)
from repro.testing.registry import CollectiveSpec, KernelSpec
from repro.testing.references import ref_allreduce, ref_gemm


def _gemm_spec(run):
    return KernelSpec(
        name="mutant_gemm",
        sample=lambda rng: {"m": 5, "n": 6, "k": 7},
        build=lambda cfg: SWGemmPlan(cfg["m"], cfg["n"], cfg["k"]),
        run=run,
        min_dma_bytes=lambda cfg: float(
            4 * (cfg["m"] * cfg["k"] + cfg["k"] * cfg["n"] + cfg["m"] * cfg["n"])
        ),
        time_monotone=False,
    )


class TestDifferentialCatchesBrokenKernels:
    def test_healthy_mutant_baseline_passes(self):
        def run(plan, cfg, rng):
            a = rng.normal(size=(cfg["m"], cfg["k"]))
            b = rng.normal(size=(cfg["k"], cfg["n"]))
            return [("run", plan.run(a, b), ref_gemm(a, b))]

        report = run_kernel_case(_gemm_spec(run), index=0)
        assert report.ok, str(report)

    def test_single_element_corruption_is_caught(self):
        # The classic blocked-kernel bug: one fringe element wrong.
        def run(plan, cfg, rng):
            a = rng.normal(size=(cfg["m"], cfg["k"]))
            b = rng.normal(size=(cfg["k"], cfg["n"]))
            out = plan.run(a, b).copy()
            out[-1, -1] += 1e-3
            return [("run", out, ref_gemm(a, b))]

        report = run_kernel_case(_gemm_spec(run), index=0)
        assert not report.ok
        assert any("run:" in f for f in report.failures)
        assert report.max_ulp > 1e6  # a real mismatch, not round-off

    def test_dropped_k_block_is_caught(self):
        # Simulates a blocked GEMM that forgets the last contraction panel.
        def run(plan, cfg, rng):
            a = rng.normal(size=(cfg["m"], cfg["k"]))
            b = rng.normal(size=(cfg["k"], cfg["n"]))
            return [("run", a[:, :-1] @ b[:-1, :], ref_gemm(a, b))]

        report = run_kernel_case(_gemm_spec(run), index=3)
        assert not report.ok

    def test_shape_mismatch_is_caught(self):
        def run(plan, cfg, rng):
            a = rng.normal(size=(cfg["m"], cfg["k"]))
            b = rng.normal(size=(cfg["k"], cfg["n"]))
            return [("run", plan.run(a, b).T, ref_gemm(a, b))]

        report = run_kernel_case(_gemm_spec(run), index=0)
        assert not report.ok
        assert any("shape" in f for f in report.failures)

    def test_crashing_plan_is_reported_not_raised(self):
        def run(plan, cfg, rng):
            raise RuntimeError("kernel exploded")

        report = run_kernel_case(_gemm_spec(run), index=0)
        assert not report.ok
        assert any("kernel exploded" in f for f in report.failures)


class TestInvariantsCatchBrokenCosts:
    def test_negative_component_rejected(self):
        with pytest.raises(InvariantViolation, match="negative"):
            check_cost_sane(PlanCost(compute_s=-1.0, dma_s=1.0))

    def test_zero_total_time_rejected(self):
        with pytest.raises(InvariantViolation, match="must be > 0"):
            check_cost_sane(PlanCost())

    def test_non_finite_rejected(self):
        with pytest.raises(InvariantViolation, match="not finite"):
            check_cost_sane(PlanCost(compute_s=float("nan"), dma_s=1.0))

    def test_unconserved_dma_rejected(self):
        cost = PlanCost(dma_s=1.0, dma_bytes=10.0)
        with pytest.raises(InvariantViolation, match="conserved"):
            check_dma_conserved(cost, min_bytes=100.0)

    def test_shrinking_work_rejected(self):
        small = PlanCost(compute_s=1.0, flops=100.0, dma_bytes=10.0)
        big = PlanCost(compute_s=2.0, flops=50.0, dma_bytes=20.0)
        with pytest.raises(InvariantViolation, match="flops decreased"):
            check_monotone(small, big)

    def test_shrinking_time_rejected(self):
        small = PlanCost(compute_s=2.0, flops=100.0, dma_bytes=10.0)
        big = PlanCost(compute_s=1.0, flops=200.0, dma_bytes=20.0)
        with pytest.raises(InvariantViolation, match="time decreased"):
            check_monotone(small, big)

    def test_broken_cost_model_fails_the_fuzzer(self):
        # End to end: a plan whose cost model "forgets" its DMA traffic is
        # rejected by the same path the registry specs run through.
        class ZeroTrafficGemm(SWGemmPlan):
            def cost(self):
                real = super().cost()
                return PlanCost(
                    compute_s=real.compute_s, dma_s=real.dma_s,
                    rlc_s=real.rlc_s, overhead_s=real.overhead_s,
                    flops=real.flops, dma_bytes=0.0,
                )

        spec = KernelSpec(
            name="mutant_zero_traffic",
            sample=lambda rng: {"m": 16, "n": 16, "k": 16},
            build=lambda cfg: ZeroTrafficGemm(cfg["m"], cfg["n"], cfg["k"]),
            run=None,
            min_dma_bytes=lambda cfg: float(4 * 3 * 16 * 16),
            time_monotone=False,
        )
        report = run_kernel_case(spec, index=0)
        assert not report.ok
        assert any("conserved" in f for f in report.failures)


class TestDifferentialCatchesBrokenCollectives:
    @staticmethod
    def _spec(execute):
        return CollectiveSpec(
            name="mutant_allreduce",
            execute=execute,
            reference=lambda inputs, cfg: ref_allreduce(inputs, average=cfg["average"]),
        )

    def test_corrupted_rank_is_caught(self):
        from repro.simmpi import rhd_allreduce

        def execute(comm, inputs, cfg):
            bufs = [b.copy() for b in inputs]
            result = rhd_allreduce(comm, bufs, average=cfg["average"])
            bufs[-1][0] += 1e-6  # one rank disagrees by one element
            return bufs, result

        # Sweep a few seeds: every drawn config must catch the corruption
        # (p == 1 included: the lone rank still diverges from the sum).
        for i in range(5):
            report = run_collective_case(self._spec(execute), index=i)
            assert not report.ok, str(report)

    def test_dropped_reduction_is_caught(self):
        def execute(comm, inputs, cfg):
            return [b.copy() for b in inputs], None  # "allreduce" that no-ops

        for i in range(5):
            report = run_collective_case(self._spec(execute), index=i)
            if report.config["p"] == 1 and not report.config["average"]:
                continue  # identity is correct for a single rank
            assert not report.ok, str(report)


class TestSeedStrings:
    def test_round_trip(self):
        s = seed_string("conv_implicit", 17)
        assert parse_seed_string(s) == ("conv_implicit", differential.BASE_SEED, 17)

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed seed string"):
            parse_seed_string("not-a-seed")

    def test_unknown_spec_rejected(self):
        with pytest.raises(KeyError, match="not a registered"):
            differential.reproduce("no_such_kernel:0x5caffe:0")

    def test_different_indices_draw_different_configs(self):
        reports = differential.fuzz_kernel("gemm", n_configs=10)
        configs = {tuple(sorted(r.config.items())) for r in reports}
        assert len(configs) > 1


class TestUlpMetric:
    def test_identical_is_zero(self):
        x = np.linspace(-3, 3, 50)
        assert max_ulp_diff(x, x) == 0.0

    def test_one_ulp_is_one(self):
        x = np.array([1.0])
        y = np.nextafter(x, np.inf)
        assert max_ulp_diff(x, y) == pytest.approx(1.0)

    def test_shape_mismatch_is_infinite(self):
        assert max_ulp_diff(np.zeros(3), np.zeros(4)) == float("inf")
