"""Fidelity tests for the implicit plan's layout-faithful blocked execution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.kernels import ImplicitConvPlan, TensorTransformPlan


def to_implicit_layouts(x_bnrc, w_onkk):
    """Convert default-layout operands to the implicit layouts."""
    x_rcnb = np.transpose(x_bnrc, (2, 3, 1, 0))
    w_kknc = np.transpose(w_onkk, (2, 3, 0, 1))
    return np.ascontiguousarray(x_rcnb), np.ascontiguousarray(w_kknc)


class TestBlockedImplicitExecution:
    @settings(max_examples=8, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=4),
        hw=st.integers(min_value=4, max_value=10),
        k=st.integers(min_value=1, max_value=3),
        stride=st.integers(min_value=1, max_value=2),
        pad=st.integers(min_value=0, max_value=1),
    )
    def test_matches_reference_forward(self, batch, hw, k, stride, pad):
        if hw + 2 * pad < k:
            return
        c = 64  # minimum channels for the implicit plan
        rng = np.random.default_rng(batch * 31 + hw)
        x = rng.normal(size=(batch, c, hw, hw))
        w = rng.normal(size=(c, c, k, k))
        plan = ImplicitConvPlan(batch, c, c, hw, hw, k, stride, pad)
        reference = plan.forward(x, w, None)  # (B, No, Ho, Wo)
        x_imp, w_imp = to_implicit_layouts(x, w)
        got = plan.run_blocked_implicit_layout(x_imp, w_imp)  # (Ho, Wo, No, B)
        np.testing.assert_allclose(
            np.transpose(got, (3, 2, 0, 1)), reference, rtol=1e-9, atol=1e-10
        )

    def test_many_channel_blocks(self):
        # Force several output-channel blocks (no_block = 128).
        rng = np.random.default_rng(1)
        batch, ni, no, hw = 2, 64, 320, 5
        x = rng.normal(size=(batch, ni, hw, hw))
        w = rng.normal(size=(no, ni, 3, 3))
        plan = ImplicitConvPlan(batch, ni, no, hw, hw, 3, 1, 1)
        x_imp, w_imp = to_implicit_layouts(x, w)
        got = plan.run_blocked_implicit_layout(x_imp, w_imp)
        np.testing.assert_allclose(
            np.transpose(got, (3, 2, 0, 1)), plan.forward(x, w, None), rtol=1e-9
        )

    def test_charges_dma(self):
        rng = np.random.default_rng(2)
        plan = ImplicitConvPlan(2, 64, 64, 6, 6, 3, 1, 1)
        x_imp, w_imp = to_implicit_layouts(
            rng.normal(size=(2, 64, 6, 6)), rng.normal(size=(64, 64, 3, 3))
        )
        plan.run_blocked_implicit_layout(x_imp, w_imp)
        assert plan.core_group.clock.category_total("dma") > 0

    def test_layout_round_trip_through_transform_plans(self):
        """The tensor-transform plans produce exactly the layouts the
        blocked implicit kernel consumes (the Sec. IV-C pipeline)."""
        rng = np.random.default_rng(3)
        batch, c, hw = 2, 64, 6
        x = rng.normal(size=(batch, c, hw, hw))
        w = rng.normal(size=(c, c, 3, 3))
        plan = ImplicitConvPlan(batch, c, c, hw, hw, 3, 1, 1)
        to_imp = TensorTransformPlan((batch, c, hw, hw), to_implicit=True)
        x_imp = to_imp.run(x)
        w_imp = np.ascontiguousarray(np.transpose(w, (2, 3, 0, 1)))
        y_imp = plan.run_blocked_implicit_layout(x_imp, w_imp)
        back = TensorTransformPlan((batch, c, hw, hw), to_implicit=False)
        y = back.run(y_imp)
        np.testing.assert_allclose(y, plan.forward(x, w, None), rtol=1e-9)

    def test_shape_validation(self):
        plan = ImplicitConvPlan(2, 64, 64, 6, 6, 3, 1, 1)
        with pytest.raises(ShapeError):
            plan.run_blocked_implicit_layout(
                np.zeros((6, 6, 64, 3)), np.zeros((3, 3, 64, 64))
            )
        with pytest.raises(ShapeError):
            plan.run_blocked_implicit_layout(
                np.zeros((6, 6, 64, 2)), np.zeros((3, 3, 32, 64))
            )
