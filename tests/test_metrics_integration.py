"""End-to-end metrics tests: instrumentation, inertness, roofline, CLI.

Pins the ISSUE acceptance criteria:

* enabling metrics collection changes no simulated-time results (the
  no-op guarantee, mirroring the tracing inertness pin);
* trace and metrics agree on total DMA bytes within one session;
* the roofline analyzer pins a stride-degraded/pure-movement plan as
  DMA-bound and a large GEMM as compute-bound;
* ``python -m repro`` exits 2 with a usable message on unknown input;
* the merged Chrome export with counter tracks still validates.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.__main__ import main as repro_main
from repro.frame.model_zoo import lenet
from repro.hw.clock import SimClock
from repro.hw.dma import DMAEngine
from repro.kernels.gemm import SWGemmPlan
from repro.kernels.im2col import Im2colPlan
from repro.metrics import (
    classify_cost,
    collect_training_step,
    net_roofline,
    to_chrome_with_metrics,
)
from repro.metrics.registry import MetricsRegistry, collecting
from repro.simmpi import SimComm, block_placement, rhd_allreduce
from repro.topology import TaihuLightFabric
from repro.trace.export import validate_chrome
from repro.trace.tracer import Tracer, tracing


def _comm(p: int, q: int | None = None) -> SimComm:
    q = q if q is not None else p
    fabric = TaihuLightFabric(n_nodes=p, nodes_per_supernode=q)
    return SimComm(fabric, block_placement(p, q))


class TestMetricsAreInert:
    """Enabling metrics collection never changes simulated-time results."""

    def test_allreduce_identical_with_metrics(self):
        bufs_a = [np.ones(1 << 14) for _ in range(8)]
        bufs_b = [np.ones(1 << 14) for _ in range(8)]
        bare = rhd_allreduce(_comm(8, 4), bufs_a)
        with collecting():
            counted = rhd_allreduce(_comm(8, 4), bufs_b)
        assert counted.time_s == bare.time_s
        assert counted.steps == bare.steps
        np.testing.assert_array_equal(bufs_a[0], bufs_b[0])

    def test_dma_clock_identical_with_metrics(self):
        src = np.ones((256, 256))
        bare = DMAEngine(clock=SimClock())
        bare.get(src)
        with collecting():
            counted = DMAEngine(clock=SimClock())
            counted.get(src)
        assert counted.clock.now == bare.clock.now

    def test_plan_costs_identical_with_metrics(self):
        plan = SWGemmPlan(256, 256, 256)
        bare = plan.cost()
        with collecting():
            counted = plan.cost()
        assert counted.total_s == bare.total_s


class TestCounterContents:
    def test_dma_round_trip_counts_both_directions(self):
        src = np.ones((64, 64))  # 32 KiB of float64
        dst = np.empty_like(src)
        with collecting() as mx:
            eng = DMAEngine(clock=SimClock())
            ldm = eng.get(src)
            eng.put(ldm, dst)
        assert mx.value("dma.bytes", dir="get") == src.nbytes
        assert mx.value("dma.bytes", dir="put") == src.nbytes
        assert mx.value("dma.transfers") == 2
        assert mx.value("dma.busy_s") == pytest.approx(eng.clock.now)

    def test_collective_labels_reach_comm_counters(self):
        bufs = [np.ones(1 << 12) for _ in range(4)]
        with collecting() as mx:
            rhd_allreduce(_comm(4), bufs)
        assert mx.value("comm.steps", collective="rhd") > 0
        assert mx.value("comm.bytes") > 0


class TestTraceMetricsConsistency:
    """Counters and trace spans must describe the same simulated work."""

    def test_dma_bytes_match_span_payloads(self):
        src = np.ones((128, 128))
        dst = np.empty_like(src)
        tracer = Tracer()
        with collecting() as mx, tracing(tracer):
            eng = DMAEngine(clock=SimClock())
            ldm = eng.get(src)
            eng.put(ldm, dst)
        span_bytes = sum(s.args["bytes"] for s in tracer.by_category("dma_transfer"))
        assert span_bytes == mx.value("dma.bytes")

    def test_session_dma_bytes_match_span_payloads(self):
        tracer = Tracer()
        mx = MetricsRegistry()
        collect_training_step(
            lenet.build(batch_size=16), ranks=2, registry=mx, tracer=tracer
        )
        spans = tracer.by_category("dma_transfer")
        assert spans, "session trace should contain dma_transfer spans"
        span_bytes = sum(s.args["bytes"] for s in spans)
        assert span_bytes == pytest.approx(mx.value("dma.bytes", dir="model"))


class TestRooflinePins:
    def test_pure_movement_plan_is_dma_bound(self):
        plan = Im2colPlan(channels=64, height=56, width=56, k=3)
        verdict = classify_cost(plan.cost(), plan.params)
        assert verdict.bound == "dma"
        assert verdict.intensity == 0.0  # no flops, pure data movement
        # Strided K*K line writes keep achieved bandwidth below peak.
        assert 0.0 < verdict.dma_frac < 1.0

    def test_large_gemm_is_compute_bound(self):
        plan = SWGemmPlan(2048, 2048, 2048)
        verdict = classify_cost(plan.cost(), plan.params)
        assert verdict.bound == "compute"
        assert verdict.intensity > 10  # flops per DMA byte

    def test_net_roofline_covers_priced_layers(self):
        net = lenet.build(batch_size=16)
        rows = net_roofline(net)
        assert rows
        names = {layer.name for layer in net.layers}
        assert {r.layer for r in rows} <= names
        assert all(r.verdict.bound in ("compute", "dma", "rlc", "overhead") for r in rows)


class TestCliHardening:
    def test_unknown_command_exits_2(self, capsys):
        assert repro_main(["bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "--help" in err

    def test_unknown_net_exits_2(self, capsys):
        assert repro_main(["profile", "nosuchnet"]) == 2
        assert "nosuchnet" in capsys.readouterr().err

    def test_unknown_experiment_exits_2(self, capsys):
        assert repro_main(["experiment", "nosuchexp"]) == 2
        assert "nosuchexp" in capsys.readouterr().err

    def test_metrics_command_runs_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = repro_main(
            ["metrics", "lenet", "--ranks", "2", "--json", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-metrics/1"
        assert payload["layers"] and payload["resources"]
        stdout = capsys.readouterr().out
        assert "roofline" in stdout.lower()


class TestChromeCounterExport:
    def test_merged_export_validates_and_has_counters(self):
        tracer = Tracer()
        collect_training_step(lenet.build(batch_size=16), ranks=2, tracer=tracer)
        obj = to_chrome_with_metrics(tracer)
        assert validate_chrome(obj) == []
        counters = [ev for ev in obj["traceEvents"] if ev.get("ph") == "C"]
        assert counters, "expected counter ('C') events in merged export"
        # Counter samples are cumulative, hence monotonic per counter name.
        by_name: dict[str, list[float]] = {}
        for ev in counters:
            for value in ev["args"].values():
                by_name.setdefault(ev["name"], []).append(value)
        for series in by_name.values():
            assert series == sorted(series)
