"""Tests for the straggler-sensitivity study."""

import pytest

from repro.harness.straggler_study import barrier_inflation, generate, render


class TestBarrierInflation:
    def test_no_jitter_no_inflation(self):
        assert barrier_inflation(64, 0.0) == pytest.approx(1.0)

    def test_inflation_grows_with_cluster_size(self):
        small = barrier_inflation(4, 0.05)
        big = barrier_inflation(1024, 0.05)
        assert 1.0 < small < big

    def test_inflation_grows_with_jitter(self):
        lo = barrier_inflation(64, 0.02)
        hi = barrier_inflation(64, 0.10)
        assert lo < hi

    def test_deterministic(self):
        assert barrier_inflation(64, 0.05) == barrier_inflation(64, 0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            barrier_inflation(0, 0.05)
        with pytest.raises(ValueError):
            barrier_inflation(4, -0.1)


class TestHarness:
    def test_grid_and_render(self):
        points = generate(node_counts=(4, 64), jitters=(0.0, 0.05))
        assert len(points) == 4
        text = render(points)
        assert "Straggler" in text and "cv=0.05" in text
