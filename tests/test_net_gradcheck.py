"""Whole-net gradient checks over randomized DAG topologies.

Layer-level gradcheck proves each operator; this proves the *net engine* —
gradient seeding, fan-out accumulation, branch merging — by comparing every
sampled parameter's analytic gradient against central differences of the
end-to-end loss on randomly assembled nets.
"""

import numpy as np
import pytest

from repro.frame.layers import (
    BatchNormLayer,
    ConcatLayer,
    ConvolutionLayer,
    DataLayer,
    EltwiseLayer,
    InnerProductLayer,
    PoolingLayer,
    ReLULayer,
    SigmoidLayer,
    SoftmaxWithLossLayer,
    TanHLayer,
)
from repro.frame.net import Net
from repro.utils.rng import seeded_rng


class FixedSource:
    """Returns the same batch every call (finite differences need a fixed
    objective)."""

    def __init__(self, images, labels):
        self.images = images
        self.labels = labels
        self.sample_shape = images.shape[1:]

    def next_batch(self, batch_size):
        assert batch_size == self.images.shape[0]
        return self.images, self.labels


def build_random_net(seed: int) -> Net:
    """Assemble a small random DAG: trunk ops, a two-branch merge, a head."""
    rng = np.random.default_rng(seed)
    batch, classes = 4, 3
    c, hw = 3, 8
    images = rng.normal(size=(batch, c, hw, hw)).astype(np.float32)
    labels = rng.integers(0, classes, size=batch)
    net = Net(f"rand{seed}")
    net.add(DataLayer("data", FixedSource(images, labels), batch), [], ["data", "label"])
    cur = "data"
    wrng = seeded_rng(seed + 1000)

    # Trunk: 1-2 random conv/activation blocks.
    n_blocks = int(rng.integers(1, 3))
    width = int(rng.choice([4, 6]))
    for i in range(n_blocks):
        net.add(
            ConvolutionLayer(f"conv{i}", width, 3, pad=1, rng=wrng), [cur], [f"conv{i}"]
        )
        cur = f"conv{i}"
        act = rng.choice(["relu", "sigmoid", "tanh", "bn"])
        if act == "relu":
            net.add(ReLULayer(f"act{i}"), [cur], [f"act{i}"])
        elif act == "sigmoid":
            net.add(SigmoidLayer(f"act{i}"), [cur], [f"act{i}"])
        elif act == "tanh":
            net.add(TanHLayer(f"act{i}"), [cur], [f"act{i}"])
        else:
            net.add(BatchNormLayer(f"act{i}"), [cur], [f"act{i}"])
        cur = f"act{i}"

    # Two branches off the trunk, merged by eltwise or concat (fan-out!).
    net.add(ConvolutionLayer("ba", width, 1, rng=wrng), [cur], ["ba"])
    net.add(ConvolutionLayer("bb", width, 3, pad=1, rng=wrng), [cur], ["bb"])
    if rng.random() < 0.5:
        net.add(EltwiseLayer("merge"), ["ba", "bb"], ["merge"])
    else:
        net.add(ConcatLayer("merge"), ["ba", "bb"], ["merge"])
    net.add(PoolingLayer("pool", 2, 2), ["merge"], ["pool"])
    net.add(InnerProductLayer("fc", classes, rng=wrng), ["pool"], ["logits"])
    net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
    return net


def loss_of(net: Net) -> float:
    return net.forward()["loss"]


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_random_net_param_gradients(seed):
    net = build_random_net(seed)
    net.zero_param_diffs()
    loss_of(net)
    net.backward()
    rng = np.random.default_rng(seed + 99)
    params = [p for p in net.params]
    # Sample a handful of parameters spread over the net.
    for p in rng.choice(len(params), size=min(4, len(params)), replace=False):
        blob = params[p]
        analytic = blob.diff.copy()
        flat = rng.choice(blob.count, size=min(3, blob.count), replace=False)
        for f in flat:
            idx = np.unravel_index(f, blob.shape)
            orig = float(blob.data[idx])
            eps = 1e-3  # float32 params; widened for stability
            blob.data[idx] = orig + eps
            hi = float(blob.data[idx])
            up = loss_of(net)
            blob.data[idx] = orig - eps
            lo_v = float(blob.data[idx])
            down = loss_of(net)
            blob.data[idx] = orig
            numeric = (up - down) / (hi - lo_v)
            got = float(analytic[idx])
            assert np.isclose(got, numeric, rtol=5e-2, atol=5e-4), (
                f"net {net.name} param {blob.name} at {idx}: "
                f"analytic={got}, numeric={numeric}"
            )


def test_random_net_trains(seed=7):
    from repro.frame.solver import SGDSolver

    net = build_random_net(seed)
    solver = SGDSolver(net, base_lr=0.02, momentum=0.9)
    stats = solver.step(25)
    assert stats.losses[-1] < stats.losses[0]
