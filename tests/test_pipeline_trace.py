"""Pipeline trace emission (:func:`repro.pipeline.emit_pipeline_trace`).

Pins three contracts:

* the exact Chrome JSON emitted for a small fixed timeline
  (``tests/golden/trace_pipeline.json`` — byte-for-byte, simulated time
  is deterministic; regenerate with ``python -m tests.test_pipeline_trace``);
* the critical-path identity — scheduling the emitted span graph with no
  factors reproduces the walked makespan bitwise, both for a standalone
  model timeline and for a full :class:`~repro.pipeline.PipelineTrainer`
  trace (which mixes p2p transfers and collective spans into the same
  graph);
* what-if scaling — ``stage`` and ``p2p`` factors reprice the projection
  in the expected direction, and a pure-compute uniform pipeline scales
  exactly linearly under a ``stage`` factor.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.frame.model_zoo import lenet
from repro.pipeline import PipelineTrainer, emit_pipeline_trace, simulate_pipeline
from repro.trace import to_chrome, validate_chrome
from repro.trace.critpath import build_graph, schedule
from repro.trace.tracer import Tracer, tracing

GOLDEN = pathlib.Path(__file__).parent / "golden" / "trace_pipeline.json"


def fixed_timeline():
    """A 2-stage, 2-microbatch 1F1B walk with decimal-exact durations."""
    return simulate_pipeline(
        [0.5, 1.0],
        [1.0, 2.0],
        n_microbatches=2,
        schedule="1f1b",
        fwd_xfer_s=[0.25],
        bwd_xfer_s=[0.25],
        xfer_bytes=[1024.0],
    )


def emit_fixed(tracer: Tracer | None = None) -> Tracer:
    tracer = tracer if tracer is not None else Tracer()
    emit_pipeline_trace(tracer, fixed_timeline())
    return tracer


def render(tracer: Tracer) -> str:
    return json.dumps(to_chrome(tracer), indent=1, sort_keys=True) + "\n"


class TestGolden:
    def test_matches_checked_in_golden_file(self):
        assert GOLDEN.is_file(), (
            f"golden file missing: {GOLDEN}; regenerate with "
            "`python -m tests.test_pipeline_trace`"
        )
        assert render(emit_fixed()) == GOLDEN.read_text()

    def test_golden_file_is_valid_chrome_format(self):
        assert validate_chrome(json.loads(GOLDEN.read_text())) == []

    def test_emission_is_deterministic(self):
        assert render(emit_fixed()) == render(emit_fixed())


class TestSpans:
    @pytest.fixture()
    def tracer(self):
        return emit_fixed()

    def test_span_categories(self, tracer):
        cats = {s.cat for s in tracer.spans}
        assert {"stage_fwd", "stage_bwd", "activation_xfer"} <= cats

    def test_op_spans_match_timeline(self, tracer):
        timeline = fixed_timeline()
        ops = sorted(
            (s for s in tracer.spans if s.cat in ("stage_fwd", "stage_bwd")),
            key=lambda s: (s.track, s.start_s),
        )
        recs = sorted(timeline.ops, key=lambda o: (o.stage, o.start_s))
        assert len(ops) == len(recs)
        for span, rec in zip(ops, recs):
            assert span.start_s == rec.start_s
            assert span.dur_s == rec.dur_s

    def test_xfer_spans_carry_ready_floor(self, tracer):
        xfers = [s for s in tracer.spans if s.cat == "activation_xfer"]
        assert xfers and all("ready_s" in s.args for s in xfers)
        assert all(s.start_s >= s.args["ready_s"] for s in xfers)

    def test_bubble_spans_cover_stage_gaps(self, tracer):
        timeline = fixed_timeline()
        total_gap = sum(
            dur for s in range(timeline.n_stages)
            for _start, dur in timeline.stage_gaps(s)
        )
        bubbles = [s for s in tracer.spans if s.cat == "pipeline_bubble"]
        assert sum(s.dur_s for s in bubbles) == pytest.approx(total_gap)


class TestCritpathIdentity:
    def test_standalone_emit_reproduces_makespan(self):
        timeline = fixed_timeline()
        tracer = Tracer()
        emit_pipeline_trace(tracer, timeline)
        sched = schedule(build_graph(tracer))
        assert sched.end_to_end_s == tracer.end_time()
        assert sched.end_to_end_s == timeline.makespan_s

    def test_origin_offset_preserves_identity(self):
        tracer = Tracer()
        emit_pipeline_trace(tracer, fixed_timeline(), origin_s=3.25)
        assert schedule(build_graph(tracer)).end_to_end_s == tracer.end_time()

    def test_trainer_trace_reproduces_end_time(self):
        """Full trainer trace: stage/xfer spans mixed with p2p transfers
        and (in hybrid mode) collective spans still schedule to the
        recorded end time bitwise."""
        tracer = Tracer()
        with tracing(tracer):
            trainer = PipelineTrainer(
                lambda rank=0: lenet.build(batch_size=4,
                                           rng=np.random.default_rng(7)),
                2,
                n_microbatches=2,
                replicas=2,
            )
            trainer.step(2)
        sched = schedule(build_graph(tracer))
        assert sched.end_to_end_s == tracer.end_time()


class TestWhatIf:
    def test_stage_factor_scales_pure_compute_linearly(self):
        timeline = simulate_pipeline(
            [1.0] * 4, [1.0] * 4, n_microbatches=8, schedule="fill_drain"
        )
        tracer = Tracer()
        emit_pipeline_trace(tracer, timeline)
        graph = build_graph(tracer)
        base = schedule(graph).end_to_end_s
        doubled = schedule(graph, factors={"stage": 2.0}).end_to_end_s
        assert doubled == pytest.approx(2.0 * base)

    def test_p2p_factor_only_moves_transfer_bound_schedules(self):
        tracer = Tracer()
        emit_pipeline_trace(tracer, fixed_timeline())
        graph = build_graph(tracer)
        base = schedule(graph).end_to_end_s
        slower = schedule(graph, factors={"p2p": 50.0}).end_to_end_s
        faster = schedule(graph, factors={"p2p": 0.01}).end_to_end_s
        assert slower > base
        assert faster <= base


if __name__ == "__main__":  # pragma: no cover - golden regeneration helper
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(render(emit_fixed()))
    print(f"wrote {GOLDEN}")
