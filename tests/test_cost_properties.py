"""Property tests on the cost models: the monotonicities and dominance
relations the paper's design arguments rely on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.kernels import ExplicitConvPlan, Im2colPlan, ImplicitConvPlan, SWGemmPlan
from repro.simmpi.collectives.analysis import (
    improved_allreduce_cost,
    original_allreduce_cost,
    stepwise_rhd_cost,
)
from repro.simmpi.comm import reduce_gamma
from repro.topology import LinearCostModel, SW_COLLECTIVE_NETWORK

MODEL = LinearCostModel(alpha=1e-6, beta1=1e-10, beta2=4e-10, gamma=3e-11)


class TestGemmCostProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        m=st.integers(min_value=8, max_value=512),
        n=st.integers(min_value=8, max_value=512),
        k=st.integers(min_value=8, max_value=512),
    )
    def test_cost_positive_and_flops_exact(self, m, n, k):
        cost = SWGemmPlan(m, n, k).cost()
        assert cost.total_s > 0
        assert cost.flops == 2.0 * m * n * k

    @settings(max_examples=15, deadline=None)
    @given(
        m=st.integers(min_value=8, max_value=256),
        n=st.integers(min_value=64, max_value=512),
        k=st.integers(min_value=64, max_value=512),
    )
    def test_efficiency_monotone_in_m(self, m, n, k):
        # The paper's small-m collapse ("m > 160 for compute-bound"): the
        # achieved rate never *drops* when m grows. (Total time can dip at
        # small m because the pipeline-fill penalty shrinks faster than the
        # work grows — the regime the paper tells you to avoid.)
        small = SWGemmPlan(m, n, k).cost()
        big = SWGemmPlan(2 * m, n, k).cost()
        assert big.gflops >= small.gflops * 0.999

    def test_never_exceeds_peak_rate(self):
        for dims in [(512, 512, 512), (2048, 2048, 2048), (64, 4096, 27)]:
            cost = SWGemmPlan(*dims, dtype_bytes=8).cost()
            assert cost.gflops <= 742.4 + 1e-6


class TestConvCostProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=32),
        channels=st.sampled_from([64, 128, 256]),
        img=st.sampled_from([14, 28, 56]),
    )
    def test_both_plans_price_same_flops(self, batch, channels, img):
        exp = ExplicitConvPlan(batch, channels, channels, img, img, 3, 1, 1)
        imp = ImplicitConvPlan(batch, channels, channels, img, img, 3, 1, 1)
        assert exp.cost_forward().flops == pytest.approx(imp.cost_forward().flops)

    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(min_value=1, max_value=16))
    def test_forward_cost_monotone_in_batch(self, batch):
        a = ExplicitConvPlan(batch, 64, 64, 28, 28, 3, 1, 1).cost_forward().total_s
        b = ExplicitConvPlan(batch + 1, 64, 64, 28, 28, 3, 1, 1).cost_forward().total_s
        assert b > a

    def test_implicit_per_image_efficiency_improves_with_batch(self):
        # The implicit layout vectorizes over batch: time per image drops.
        t8 = ImplicitConvPlan(8, 128, 128, 28, 28, 3, 1, 1).cost_forward().total_s / 8
        t128 = ImplicitConvPlan(128, 128, 128, 28, 28, 3, 1, 1).cost_forward().total_s / 128
        assert t128 < t8

    def test_input_grad_costs_more_than_forward_explicit(self):
        # Table II's configuration (batch 128): explicit in-diff is ~2x
        # the forward time for every row where both exist.
        plan = ExplicitConvPlan(128, 256, 256, 56, 56, 3, 1, 1)
        assert plan.cost_backward_input().total_s > plan.cost_forward().total_s

    def test_im2col_cost_scales_with_k_squared(self):
        small = Im2colPlan(64, 56, 56, 1).cost().dma_bytes
        big = Im2colPlan(64, 56, 56, 3, pad=1).cost().dma_bytes
        assert big >= 4.9 * small


class TestAllreduceCostProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        logp=st.integers(min_value=1, max_value=10),
        logq=st.integers(min_value=0, max_value=8),
        nbytes=st.floats(min_value=1e3, max_value=1e9),
    )
    def test_improved_never_worse_than_original(self, logp, logq, nbytes):
        p, q = 2**logp, 2**logq
        if q > p:
            q = p
        impr = improved_allreduce_cost(nbytes, p, q, MODEL)
        orig = original_allreduce_cost(nbytes, p, q, MODEL)
        assert impr <= orig + 1e-15

    @settings(max_examples=15, deadline=None)
    @given(
        logp=st.integers(min_value=1, max_value=10),
        nbytes=st.floats(min_value=1e4, max_value=1e9),
    )
    def test_stepwise_round_robin_beats_block(self, logp, nbytes):
        p = 2**logp
        q = min(256, p)
        gamma = reduce_gamma("cpe")
        rr = stepwise_rhd_cost(nbytes, p, q, SW_COLLECTIVE_NETWORK, gamma, "round-robin")
        blk = stepwise_rhd_cost(nbytes, p, q, SW_COLLECTIVE_NETWORK, gamma, "block")
        assert rr <= blk + 1e-15

    @settings(max_examples=15, deadline=None)
    @given(logp=st.integers(min_value=1, max_value=9))
    def test_stepwise_monotone_in_nodes(self, logp):
        p = 2**logp
        gamma = reduce_gamma("cpe")
        a = stepwise_rhd_cost(1e8, p, 256, SW_COLLECTIVE_NETWORK, gamma)
        b = stepwise_rhd_cost(1e8, 2 * p, 256, SW_COLLECTIVE_NETWORK, gamma)
        assert b > a

    def test_stepwise_validations(self):
        gamma = reduce_gamma("cpe")
        with pytest.raises(ValueError):
            stepwise_rhd_cost(1e6, 3, 1, SW_COLLECTIVE_NETWORK, gamma)
        with pytest.raises(ValueError):
            stepwise_rhd_cost(1e6, 8, 4, SW_COLLECTIVE_NETWORK, gamma, "diagonal")
        assert stepwise_rhd_cost(1e6, 1, 1, SW_COLLECTIVE_NETWORK, gamma) == 0.0


class TestIm2colStagedExecution:
    def test_staged_matches_functional(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for (c, h, w, k, s, p) in [(2, 6, 7, 3, 1, 1), (3, 8, 8, 2, 2, 0), (1, 5, 5, 3, 1, 2)]:
            x = rng.normal(size=(c, h, w))
            plan = Im2colPlan(c, h, w, k, s, p, dtype_bytes=8)
            np.testing.assert_allclose(plan.run_staged(x), plan.run(x), rtol=1e-12)

    def test_staged_charges_clock_and_frees_ldm(self):
        import numpy as np

        x = np.random.default_rng(1).normal(size=(2, 6, 6))
        plan = Im2colPlan(2, 6, 6, 3, 1, 1, dtype_bytes=8)
        plan.run_staged(x)
        assert plan.core_group.clock.category_total("dma") > 0
        assert plan.core_group.cpes[0].ldm.used == 0
