"""Smoke tests for the report runner (with the cheap sections only)."""

import pytest

from repro.harness import report, table1_specs, fig7_allreduce


def test_run_renders_selected_sections(monkeypatch, capsys):
    monkeypatch.setattr(
        report, "SECTIONS", (("Table I", table1_specs), ("Fig. 7", fig7_allreduce))
    )
    out = report.run(verbose=True)
    assert set(out) == {"Table I", "Fig. 7"}
    printed = capsys.readouterr().out
    assert "Table I" in printed and "SW26010" in printed


def test_run_quiet(monkeypatch, capsys):
    monkeypatch.setattr(report, "SECTIONS", (("Table I", table1_specs),))
    out = report.run(verbose=False)
    assert "SW26010" in out["Table I"]
    assert capsys.readouterr().out == ""


def test_all_sections_have_render():
    for name, module in report.SECTIONS:
        assert callable(getattr(module, "render", None)), name
