"""Pipeline iteration-model tests (:mod:`repro.pipeline.model`).

Mechanics are pinned on a synthetic :class:`StagePlan` (cheap, exact);
the cost-curve unification satellite is pinned directly — the shared
:func:`~repro.parallel.comm_cost.allreduce_cost` helper must price
exactly what :class:`~repro.parallel.ssgd.SSGDIterationModel` charges
per allreduce, so the DP and hybrid models cannot drift onto different
curves. The headline hybrid-vs-DP economics on real VGG-16 live in
``benchmarks/bench_pipeline_bubble.py`` (committed baseline).
"""

from __future__ import annotations

import pytest

from repro.parallel.comm_cost import allreduce_cost, ptp_cost
from repro.parallel.ssgd import SSGDIterationModel
from repro.pipeline import PipelineIterationModel, StagePlan

MB = 1e6


def synthetic_plan(n_stages=4, param_mb=40.0, cut_mb=0.5):
    """A balanced synthetic plan: equal stages, equal cuts."""
    return StagePlan(
        net_name="synthetic",
        boundaries=tuple(range(n_stages + 1)),
        stage_fwd_s=tuple([0.02] * n_stages),
        stage_bwd_s=tuple([0.04] * n_stages),
        cut_blobs=tuple(("act",) for _ in range(n_stages - 1)),
        cut_bytes=tuple([cut_mb * MB] * (n_stages - 1)),
        stage_param_bytes=tuple([param_mb * MB] * n_stages),
    )


class TestSharedCommCost:
    """Satellite (a): one comm-cost helper for both parallelism models."""

    @pytest.mark.parametrize("n", [4, 16, 64])
    @pytest.mark.parametrize("nbytes", [1e6, 32e6, 553e6])
    def test_allreduce_cost_equals_ssgd_single_allreduce(self, n, nbytes):
        model = SSGDIterationModel(compute_s=1.0, model_bytes=nbytes)
        assert model._single_allreduce_time(nbytes, n) == allreduce_cost(
            nbytes,
            n,
            nodes_per_supernode=model.nodes_per_supernode,
            network=model.network,
            reduce_engine=model.reduce_engine,
            placement=model.placement,
        )

    def test_hybrid_allreduce_rides_the_same_curve(self):
        plan = synthetic_plan()
        model = PipelineIterationModel(plan, n_microbatches=8, replicas=4)
        expect = allreduce_cost(
            plan.stage_param_bytes[0],
            4,
            nodes_per_supernode=model.nodes_per_supernode,
            network=model.network,
            reduce_engine=model.reduce_engine,
            placement=model.placement,
        )
        assert model.stage_allreduce_times() == tuple([expect] * 4)

    def test_xfers_ride_the_ptp_curve(self):
        plan = synthetic_plan()
        model = PipelineIterationModel(plan, n_microbatches=8)
        fwd, bwd = model.xfer_times()
        scale = model.microbatch_scale
        expect = ptp_cost(plan.cut_bytes[0] * scale, network=model.network)
        assert fwd == [expect] * 3
        assert bwd == fwd


class TestMechanics:
    def test_microbatch_scale_is_stage_over_microbatches(self):
        model = PipelineIterationModel(synthetic_plan(4), n_microbatches=16)
        assert model.microbatch_scale == 4 / 16
        assert model.n_nodes == 4

    def test_pure_pipeline_pays_no_allreduce(self):
        model = PipelineIterationModel(synthetic_plan(), n_microbatches=8)
        assert model.allreduce_time() == 0.0
        bd = model.breakdown()
        assert bd.allreduce_s == 0.0
        assert bd.allreduce_hidden_s == 0.0
        assert bd.total_s == bd.pipeline_s + bd.update_s

    def test_free_transfer_timeline_bounds_exposed_comm(self):
        model = PipelineIterationModel(synthetic_plan(), n_microbatches=8)
        with_comm = model.timeline(with_comm=True)
        ideal = model.timeline(with_comm=False)
        assert with_comm.makespan_s >= ideal.makespan_s
        bd = model.breakdown()
        assert bd.exposed_comm_s == pytest.approx(
            with_comm.makespan_s - ideal.makespan_s
        )

    def test_hybrid_drain_overlap_hides_early_stage_sync(self):
        """Stage 0 finishes its backwards first; its group allreduce
        should be (at least partly) hidden behind the still-draining
        later stages."""
        model = PipelineIterationModel(
            synthetic_plan(), n_microbatches=8, replicas=4
        )
        bd = model.breakdown()
        assert bd.allreduce_hidden_s > 0.0
        # Exposed spill can never exceed the fused per-group service.
        assert bd.allreduce_s <= model.allreduce_time() + 1e-12

    def test_bucketing_hides_more_than_fused(self):
        fused = PipelineIterationModel(
            synthetic_plan(), n_microbatches=8, replicas=4
        ).breakdown()
        bucketed = PipelineIterationModel(
            synthetic_plan(), n_microbatches=8, replicas=4, bucket_mb=8.0
        ).breakdown()
        assert bucketed.allreduce_hidden_s >= fused.allreduce_hidden_s
        assert bucketed.total_s <= fused.total_s + 1e-12

    def test_update_time_prices_largest_shard(self):
        model = PipelineIterationModel(synthetic_plan(), n_microbatches=8)
        bw = model.runner.params.dma_peak_bw
        assert model.update_time() == 5.0 * 40.0 * MB / bw

    def test_more_microbatches_shrink_the_fill_drain_bubble(self):
        """On free transfers the GPipe math applies: more microbatches,
        smaller bubble. (With priced transfers the trend can invert — per
        message alpha is fixed while payloads shrink, the finding the
        harness notes — so this pin uses the idealized timeline.)"""
        small = PipelineIterationModel(synthetic_plan(), n_microbatches=4)
        large = PipelineIterationModel(synthetic_plan(), n_microbatches=32)
        assert (
            large.timeline(with_comm=False).bubble_frac
            < small.timeline(with_comm=False).bubble_frac
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineIterationModel(synthetic_plan(), n_microbatches=0)
        with pytest.raises(ValueError):
            PipelineIterationModel(synthetic_plan(), n_microbatches=4,
                                   replicas=0)

    def test_iteration_time_and_comm_fraction_consistency(self):
        model = PipelineIterationModel(
            synthetic_plan(), n_microbatches=8, replicas=2, bucket_mb=16.0
        )
        bd = model.breakdown()
        assert model.iteration_time() == bd.total_s
        assert model.comm_fraction() == bd.comm_fraction
        assert 0.0 <= bd.comm_fraction < 1.0
