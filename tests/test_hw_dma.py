"""Tests for the DMA bandwidth model (paper Fig. 2 / Principles 2-3)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hw import DMAEngine, SimClock


@pytest.fixture()
def dma():
    return DMAEngine()


class TestCalibration:
    def test_saturation_near_28gbs(self, dma):
        # Fig. 2: 64 CPEs with large continuous transfers saturate ~28 GB/s.
        bw = dma.aggregate_bandwidth(32 * 1024, 64)
        assert 26e9 <= bw <= 28.5e9

    def test_2kb_per_cpe_reaches_most_of_peak(self, dma):
        # Principle 3: >= 2 KB per CPE gives "satisfactory" bandwidth.
        bw = dma.aggregate_bandwidth(2048, 64)
        assert bw >= 0.6 * dma.params.dma_peak_bw

    def test_single_cpe_cannot_saturate(self, dma):
        # Principle 3: transfers must be issued from all 64 CPEs.
        bw1 = dma.aggregate_bandwidth(32 * 1024, 1)
        bw64 = dma.aggregate_bandwidth(32 * 1024, 64)
        assert bw1 < 0.35 * bw64

    def test_small_transfers_are_slow(self, dma):
        bw_small = dma.aggregate_bandwidth(128, 64)
        bw_big = dma.aggregate_bandwidth(32 * 1024, 64)
        assert bw_small < 0.2 * bw_big

    def test_strided_256b_blocks_acceptable(self, dma):
        # Principle 3: strided blocks should be >= 256 B.
        bw256 = dma.aggregate_bandwidth(32 * 1024, 64, block_bytes=256)
        bw_cont = dma.aggregate_bandwidth(32 * 1024, 64)
        assert bw256 >= 0.55 * bw_cont

    def test_strided_tiny_blocks_collapse(self, dma):
        bw8 = dma.aggregate_bandwidth(32 * 1024, 64, block_bytes=8)
        bw_cont = dma.aggregate_bandwidth(32 * 1024, 64)
        assert bw8 < 0.15 * bw_cont


class TestMonotonicity:
    @given(
        n1=st.integers(min_value=64, max_value=48 * 1024),
        n2=st.integers(min_value=64, max_value=48 * 1024),
        cpes=st.sampled_from([1, 8, 16, 32, 64]),
    )
    def test_bandwidth_monotone_in_size(self, n1, n2, cpes):
        dma = DMAEngine()
        lo, hi = sorted((n1, n2))
        assert dma.aggregate_bandwidth(lo, cpes) <= dma.aggregate_bandwidth(hi, cpes) + 1e-6

    @given(
        size=st.integers(min_value=64, max_value=48 * 1024),
        c1=st.integers(min_value=1, max_value=64),
        c2=st.integers(min_value=1, max_value=64),
    )
    def test_bandwidth_monotone_in_cpes(self, size, c1, c2):
        dma = DMAEngine()
        lo, hi = sorted((c1, c2))
        assert dma.aggregate_bandwidth(size, lo) <= dma.aggregate_bandwidth(size, hi) + 1e-6

    @given(
        size=st.integers(min_value=256, max_value=32 * 1024),
        b1=st.integers(min_value=4, max_value=16 * 1024),
        b2=st.integers(min_value=4, max_value=16 * 1024),
    )
    def test_bandwidth_monotone_in_block(self, size, b1, b2):
        dma = DMAEngine()
        lo, hi = sorted((b1, b2))
        assert (
            dma.aggregate_bandwidth(size, 64, block_bytes=lo)
            <= dma.aggregate_bandwidth(size, 64, block_bytes=hi) + 1e-6
        )

    def test_never_exceeds_peak(self):
        dma = DMAEngine()
        for size in (128, 1024, 48 * 1024):
            for cpes in (1, 8, 64):
                assert dma.aggregate_bandwidth(size, cpes) <= dma.params.dma_peak_bw + 1e-3


class TestTransferTime:
    def test_includes_latency(self, dma):
        t = dma.transfer_time(1, 1)
        assert t >= dma.params.dma_latency_s

    def test_zero_bytes_is_free(self, dma):
        assert dma.transfer_time(0, 64) == 0.0

    def test_invalid_cpe_count_raises(self, dma):
        with pytest.raises(ValueError):
            dma.aggregate_bandwidth(1024, 0)
        with pytest.raises(ValueError):
            dma.aggregate_bandwidth(1024, 65)

    def test_bulk_time_uses_full_cluster(self, dma):
        total = 64 * 2048
        assert dma.bulk_time(total) == pytest.approx(dma.transfer_time(2048, 64))


class TestFunctionalTransfers:
    def test_get_copies_and_charges(self):
        clock = SimClock()
        dma = DMAEngine(clock=clock)
        src = np.arange(1024, dtype=np.float64)
        out = dma.get(src)
        np.testing.assert_array_equal(out, src)
        assert out is not src
        assert clock.now > 0
        assert clock.category_total("dma") == pytest.approx(clock.now)

    def test_put_writes_destination(self):
        clock = SimClock()
        dma = DMAEngine(clock=clock)
        src = np.ones((8, 8))
        dst = np.zeros((8, 8))
        dma.put(src, dst)
        np.testing.assert_array_equal(dst, src)
        assert clock.now > 0

    def test_put_shape_mismatch(self):
        dma = DMAEngine()
        with pytest.raises(ValueError):
            dma.put(np.ones(4), np.zeros(5))

    def test_get_noncontiguous_source(self):
        dma = DMAEngine()
        src = np.arange(64).reshape(8, 8)[:, ::2]
        out = dma.get(src)
        np.testing.assert_array_equal(out, src)
        assert out.flags["C_CONTIGUOUS"]
