"""Docstring-coverage ratchet: tier-1 wrapper around the lint.

``tools/check_docstrings.py`` (also a CI step) counts public definitions
under ``src/repro`` and fails when the documented fraction drops below the
pinned floor. The floor only ever rises — see the tool's docstring.
"""

from __future__ import annotations

import importlib.util
import pathlib

ROOT = pathlib.Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "check_docstrings", ROOT / "tools" / "check_docstrings.py"
)
check_docstrings = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docstrings)


def test_coverage_meets_the_pinned_floor():
    results = check_docstrings.collect(ROOT)
    percent = check_docstrings.coverage_percent(results)
    assert percent >= check_docstrings.DEFAULT_MIN_PERCENT


def test_cli_agrees_with_the_library_path(capsys):
    assert check_docstrings.main([str(ROOT)]) == 0
    assert "docstring coverage" in capsys.readouterr().out


def test_checker_detects_breakage(tmp_path, capsys):
    """A tree of undocumented public API must fail (a lint that cannot
    fail proves nothing)."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "bare.py").write_text(
        "def exposed():\n    pass\n\n\nclass Naked:\n    def method(self):\n        pass\n"
    )
    results = check_docstrings.collect(tmp_path)
    names = {name for name, has in results if not has}
    assert {
        "src/repro/bare.py",
        "src/repro/bare.py:exposed",
        "src/repro/bare.py:Naked",
        "src/repro/bare.py:Naked.method",
    } <= names
    assert check_docstrings.main([str(tmp_path)]) == 1


def test_private_and_nested_definitions_are_not_api_surface(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(
        '"""Documented module."""\n\n'
        "def _internal():\n    pass\n\n\n"
        "def outer():\n"
        '    """Documented."""\n'
        "    def closure():\n        pass\n"
    )
    results = check_docstrings.collect(tmp_path)
    names = {name for name, _ in results}
    assert names == {"src/repro/mod.py", "src/repro/mod.py:outer"}
    assert check_docstrings.coverage_percent(results) == 100.0
