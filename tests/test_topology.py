"""Tests for the TaihuLight interconnect model (paper Sec. II-B / Fig. 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.topology import (
    INFINIBAND_FDR,
    SW_LINEAR,
    SW_NETWORK,
    LinearCostModel,
    TaihuLightFabric,
)
from repro.topology.cost_model import OVERSUBSCRIPTION


class TestLinearCostModel:
    def test_ptp_is_affine(self):
        m = LinearCostModel(alpha=1e-6, beta1=1e-10, beta2=4e-10, gamma=3e-10)
        assert m.ptp_time(0) == pytest.approx(1e-6)
        assert m.ptp_time(1e6) == pytest.approx(1e-6 + 1e-4)
        assert m.ptp_time(1e6, cross_supernode=True) == pytest.approx(1e-6 + 4e-4)

    def test_sw_linear_oversubscription_factor(self):
        assert SW_LINEAR.beta2 / SW_LINEAR.beta1 == pytest.approx(OVERSUBSCRIPTION)

    def test_reduce_time(self):
        m = LinearCostModel(alpha=0, beta1=0, beta2=0, gamma=2e-10)
        assert m.reduce_time(1e9) == pytest.approx(0.2)


class TestNetworkModel:
    def test_sw_peak_exceeds_infiniband(self):
        # Fig. 6: SW reaches higher peak uni-directional bandwidth...
        big = 4 * 1024 * 1024
        assert SW_NETWORK.bandwidth(big) > INFINIBAND_FDR.bandwidth(big)

    def test_sw_latency_worse_above_2kb(self):
        # ...but has higher latency for messages larger than ~2 KB.
        for n in (4 * 1024, 32 * 1024, 256 * 1024):
            assert SW_NETWORK.ptp_time(n) > INFINIBAND_FDR.ptp_time(n)

    def test_sw_achieves_about_12gbs(self):
        # Sec. II-B: "it only achieves 12GB/s" for very large MPI messages.
        bw = SW_NETWORK.bandwidth(64 * 1024 * 1024)
        assert 11e9 <= bw <= 12e9

    def test_oversubscribed_quarter_bandwidth(self):
        n = 1024 * 1024
        full = SW_NETWORK.bandwidth(n)
        over = SW_NETWORK.bandwidth(n, oversubscribed=True)
        assert over == pytest.approx(full / OVERSUBSCRIPTION)

    @given(st.integers(min_value=1, max_value=2**22), st.integers(min_value=1, max_value=2**22))
    def test_ptp_time_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert SW_NETWORK.ptp_time(lo) <= SW_NETWORK.ptp_time(hi) + 1e-15

    def test_to_linear_freezes_curve(self):
        lin = SW_NETWORK.to_linear(1024 * 1024, gamma=1e-10)
        assert lin.alpha == SW_NETWORK.alpha
        assert lin.beta2 == pytest.approx(lin.beta1 * OVERSUBSCRIPTION)
        assert lin.beta1 == pytest.approx(1.0 / SW_NETWORK.bandwidth(1024 * 1024))

    def test_zero_bytes(self):
        assert SW_NETWORK.bandwidth(0) == 0.0
        assert SW_NETWORK.ptp_time(0) == SW_NETWORK.alpha


class TestFabric:
    def test_supernode_assignment(self):
        fab = TaihuLightFabric(n_nodes=1024, nodes_per_supernode=256)
        assert fab.n_supernodes == 4
        assert fab.supernode_of(0) == 0
        assert fab.supernode_of(255) == 0
        assert fab.supernode_of(256) == 1
        assert fab.same_supernode(0, 255)
        assert not fab.same_supernode(255, 256)

    def test_partial_supernode(self):
        fab = TaihuLightFabric(n_nodes=300, nodes_per_supernode=256)
        assert fab.n_supernodes == 2
        assert len(fab.supernodes[1]) == 44

    def test_ptp_time_cross_is_slower(self):
        fab = TaihuLightFabric(n_nodes=512, nodes_per_supernode=256)
        n = 1024 * 1024
        intra = fab.ptp_time(0, 1, n)
        cross = fab.ptp_time(0, 511, n)
        assert cross > intra

    def test_self_message_free(self):
        fab = TaihuLightFabric(n_nodes=8, nodes_per_supernode=4)
        assert fab.ptp_time(3, 3, 1024) == 0.0

    def test_bad_node_rejected(self):
        fab = TaihuLightFabric(n_nodes=8)
        with pytest.raises(ValueError):
            fab.ptp_time(0, 8, 10)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            TaihuLightFabric(n_nodes=0)
        with pytest.raises(ValueError):
            TaihuLightFabric(n_nodes=4, nodes_per_supernode=0)


class TestNodeAndSupernode:
    def test_node_lazy_processor(self):
        from repro.topology.node import ComputeNode

        node = ComputeNode(node_id=3, supernode_id=0)
        assert node._processor is None
        proc = node.processor
        assert proc.n_core_groups == 4
        assert node.processor is proc  # cached

    def test_node_validation(self):
        from repro.topology.node import ComputeNode

        with pytest.raises(ValueError):
            ComputeNode(node_id=-1, supernode_id=0)

    def test_supernode_rejects_foreign_node(self):
        from repro.topology.node import ComputeNode
        from repro.topology.supernode import Supernode

        sn = Supernode(supernode_id=1)
        with pytest.raises(ValueError):
            sn.add_node(ComputeNode(node_id=0, supernode_id=0))
        node = ComputeNode(node_id=256, supernode_id=1)
        sn.add_node(node)
        assert len(sn) == 1
        assert node in sn
