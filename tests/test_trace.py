"""Unit tests for the tracer core (:mod:`repro.trace.tracer`).

Pins the three invariants the instrumentation relies on: span nesting
(a ``span()`` block covers everything emitted inside it), per-track clock
monotonicity (cursors only ratchet forward), and the disabled tracer being
a true no-op (the ambient default, restored after every ``tracing`` block).
"""

from __future__ import annotations

import pytest

from repro import trace
from repro.errors import SpanValidationError
from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    SPAN_CATEGORIES,
    Tracer,
    active,
    emit_cost_spans,
    install,
    suspended,
    tracing,
)


@pytest.fixture()
def tr():
    return Tracer()


class TestEmission:
    def test_cursor_driven_spans_are_sequential(self, tr):
        a = tr.emit("a", "cpe_compute", track="cpe", dur=1.0)
        b = tr.emit("b", "cpe_compute", track="cpe", dur=2.0)
        assert a.start_s == 0.0 and a.end_s == 1.0
        assert b.start_s == 1.0 and b.end_s == 3.0
        assert tr.cursor("cpe") == 3.0

    def test_tracks_are_independent(self, tr):
        tr.emit("a", "cpe_compute", track="cpe", dur=5.0)
        b = tr.emit("b", "dma_transfer", track="dma", dur=1.0)
        assert b.start_s == 0.0
        assert tr.cursor("dma") == 1.0
        assert tr.end_time() == 5.0

    def test_clock_driven_start_is_pinned(self, tr):
        s = tr.emit("x", "dma_transfer", track="dma", start=4.5, dur=0.5)
        assert s.start_s == 4.5
        assert tr.cursor("dma") == 5.0

    def test_negative_duration_rejected(self, tr):
        with pytest.raises(ValueError):
            tr.emit("bad", "cpe_compute", dur=-1.0)

    def test_instant_event(self, tr):
        s = tr.instant_event("alloc", "ldm_alloc", track="ldm", args={"nbytes": 64})
        assert s.instant and s.dur_s == 0.0
        assert s.args == {"nbytes": 64}

    def test_queries(self, tr):
        tr.emit("a", "cpe_compute", track="cpe", dur=1.0)
        tr.emit("b", "dma_transfer", track="dma", dur=1.0)
        tr.emit("c", "dma_transfer", track="dma", dur=1.0)
        assert len(tr) == 3
        assert [s.name for s in tr.by_category("dma_transfer")] == ["b", "c"]
        assert tr.tracks() == ["cpe", "dma"]


class TestMonotonicity:
    """The per-track cursor never moves backwards."""

    def test_early_pinned_span_does_not_rewind_cursor(self, tr):
        tr.emit("late", "dma_transfer", track="dma", start=10.0, dur=1.0)
        tr.emit("early", "dma_transfer", track="dma", start=2.0, dur=1.0)
        assert tr.cursor("dma") == 11.0
        follow = tr.emit("next", "dma_transfer", track="dma", dur=1.0)
        assert follow.start_s == 11.0

    def test_cursor_monotone_over_mixed_emission(self, tr):
        seen = []
        for i, start in enumerate([None, 3.0, 1.0, None, 0.5]):
            tr.emit(f"s{i}", "cpe_compute", track="cpe", start=start, dur=0.25)
            seen.append(tr.cursor("cpe"))
        assert seen == sorted(seen)


class TestNesting:
    def test_span_covers_children_on_same_track(self, tr):
        with tr.span("outer", "solver_iter", track="work"):
            tr.emit("c1", "cpe_compute", track="work", dur=1.0)
            tr.emit("c2", "cpe_compute", track="work", dur=2.0)
        outer = tr.spans[-1]
        assert outer.name == "outer"
        assert outer.start_s == 0.0 and outer.dur_s == 3.0
        for child in tr.spans[:-1]:
            assert outer.start_s <= child.start_s
            assert child.end_s <= outer.end_s

    def test_span_covers_descendant_tracks(self, tr):
        with tr.span("iter", "solver_iter", track="rank0"):
            tr.emit("k", "cpe_compute", track="rank0/cpe", dur=4.0)
        outer = tr.spans[-1]
        assert outer.track == "rank0" and outer.dur_s == 4.0

    def test_nested_spans_nest(self, tr):
        with tr.span("outer", "solver_iter", track="t"):
            with tr.span("inner", "layer_fwd", track="t"):
                tr.emit("leaf", "cpe_compute", track="t", dur=1.0)
        inner = next(s for s in tr.spans if s.name == "inner")
        outer = next(s for s in tr.spans if s.name == "outer")
        assert outer.start_s <= inner.start_s <= inner.end_s <= outer.end_s

    def test_explicit_duration_ratchets_cursor(self, tr):
        with tr.span("fixed", "solver_iter", track="t", dur=7.0):
            pass
        assert tr.cursor("t") == 7.0


class TestContext:
    def test_context_prefixes_tracks(self, tr):
        with tr.context("rank3"):
            s = tr.emit("x", "cpe_compute", track="cpe", dur=1.0)
        assert s.track == "rank3/cpe"

    def test_contexts_nest_and_unwind(self, tr):
        with tr.context("rank0"):
            with tr.context("cg1"):
                assert tr.resolve("dma") == "rank0/cg1/dma"
            assert tr.resolve("dma") == "rank0/dma"
        assert tr.resolve("dma") == "dma"

    def test_leading_slash_is_absolute(self, tr):
        with tr.context("rank0"):
            assert tr.resolve("/global") == "global"

    def test_shifted_offsets_clock_driven_starts_only(self, tr):
        with tr.shifted(100.0):
            pinned = tr.emit("p", "collective_step", track="coll", start=1.0, dur=1.0)
            cursor = tr.emit("c", "cpe_compute", track="cpe", dur=1.0)
        assert pinned.start_s == 101.0
        assert cursor.start_s == 0.0
        after = tr.emit("q", "collective_step", track="coll2", start=1.0, dur=1.0)
        assert after.start_s == 1.0


class TestDisabledTracer:
    def test_default_ambient_tracer_is_null(self):
        assert active() is NULL_TRACER
        assert not active().enabled

    def test_null_tracer_emit_raises(self):
        with pytest.raises(RuntimeError):
            NULL_TRACER.emit("x", "cpe_compute")

    def test_null_tracer_contexts_are_noops(self):
        with NULL_TRACER.context("rank0"):
            with NULL_TRACER.shifted(5.0):
                with NULL_TRACER.span("s", "solver_iter"):
                    pass
        assert len(NULL_TRACER.spans) == 0

    def test_emit_cost_spans_noop_when_disabled(self):
        class Cost:
            compute_s = dma_s = rlc_s = total_s = 1.0
            overhead_s = 0.0
            flops = dma_bytes = 0
        assert emit_cost_spans(NULL_TRACER, "conv", Cost()) is None
        assert len(NULL_TRACER.spans) == 0

    def test_tracing_installs_and_restores(self):
        assert active() is NULL_TRACER
        with tracing() as tr:
            assert active() is tr and tr.enabled
            with suspended():
                assert active() is NULL_TRACER
            assert active() is tr
        assert active() is NULL_TRACER

    def test_tracing_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert active() is NULL_TRACER

    def test_install_returns_previous(self):
        tr = Tracer()
        prev = install(tr)
        try:
            assert prev is NULL_TRACER
            assert active() is tr
        finally:
            install(prev)

    def test_null_tracer_is_a_tracer(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert isinstance(NULL_TRACER, Tracer)


class TestCostSpans:
    def test_components_pinned_at_parent_start(self, tr):
        class Cost:
            compute_s = 3.0
            dma_s = 2.0
            rlc_s = 0.0
            overhead_s = 0.5
            total_s = 3.5  # max(compute, dma, rlc) + overhead
            flops = 1000
            dma_bytes = 4096

        tr.emit("warmup", "layer_fwd", track="layers", dur=1.0)
        parent = emit_cost_spans(tr, "conv1", Cost(), cat="layer_fwd")
        assert parent.start_s == 1.0 and parent.dur_s == 3.5
        cpe = next(s for s in tr.spans if s.track == "cpe")
        dma = next(s for s in tr.spans if s.track == "dma")
        # Overlapping components visualize total = max(...) + overhead.
        assert cpe.start_s == dma.start_s == parent.start_s
        assert cpe.dur_s == 3.0 and dma.dur_s == 2.0
        # rlc_s == 0 emits nothing.
        assert not [s for s in tr.spans if s.track == "rlc"]

    def test_categories_are_the_documented_taxonomy(self):
        for cat in ("dma_transfer", "rlc_exchange", "cpe_compute", "ldm_alloc",
                    "collective_step", "layer_fwd", "layer_bwd", "solver_iter"):
            assert cat in SPAN_CATEGORIES

    def test_package_reexports(self):
        for name in ("Tracer", "tracing", "write_chrome_json", "render_timeline",
                     "render_attribution", "trace_training_step", "replay_rhd",
                     "build_graph", "critical_path", "render_critpath",
                     "parse_scales", "whatif_training", "scaling"):
            assert hasattr(trace, name)


class TestSpanValidation:
    """Spans are validated at record time with a typed error."""

    def test_nan_duration_rejected(self, tr):
        with pytest.raises(SpanValidationError):
            tr.emit("bad", "cpe_compute", dur=float("nan"))

    def test_infinite_duration_rejected(self, tr):
        with pytest.raises(SpanValidationError):
            tr.emit("bad", "cpe_compute", dur=float("inf"))

    def test_nan_start_rejected(self, tr):
        with pytest.raises(SpanValidationError):
            tr.emit("bad", "cpe_compute", start=float("nan"), dur=1.0)

    def test_end_before_start_rejected_as_value_error_too(self, tr):
        """SpanValidationError subclasses ValueError (compat with callers
        that catch the generic type)."""
        with pytest.raises(ValueError):
            tr.emit("bad", "cpe_compute", dur=-0.5)
        assert issubclass(SpanValidationError, ValueError)

    def test_rejected_span_is_not_recorded(self, tr):
        with pytest.raises(SpanValidationError):
            tr.emit("bad", "cpe_compute", dur=float("nan"))
        assert len(tr.spans) == 0


class TestEdges:
    def test_edge_records_in_order(self, tr):
        a = tr.emit("a", "cpe_compute", track="cpe", dur=1.0)
        b = tr.emit("b", "collective_step", track="coll", start=1.0, dur=1.0)
        tr.edge(a, b)
        assert tr.edges == [(a, b, "dep")]

    def test_bad_edge_kind_rejected(self, tr):
        a = tr.emit("a", "cpe_compute", track="cpe", dur=1.0)
        b = tr.emit("b", "cpe_compute", track="cpe", dur=1.0)
        with pytest.raises(SpanValidationError):
            tr.edge(a, b, kind="follows")

    def test_null_tracer_edge_raises(self, tr):
        a = tr.emit("a", "cpe_compute", track="cpe", dur=1.0)
        b = tr.emit("b", "cpe_compute", track="cpe", dur=1.0)
        with pytest.raises(RuntimeError):
            NULL_TRACER.edge(a, b)

    def test_cost_span_components_attach_as_members(self, tr):
        class Cost:
            compute_s = 3.0
            dma_s = 2.0
            rlc_s = 0.0
            overhead_s = 0.5
            total_s = 3.5
            flops = 1000
            dma_bytes = 4096

        parent = emit_cost_spans(tr, "conv1", Cost(), cat="layer_fwd")
        kinds = {(s.name, d.name, k) for s, d, k in tr.edges}
        assert ("conv1", "conv1", "member") in kinds
        assert all(k == "member" and d is parent for _, d, k in tr.edges)


class TestTimelineEdgeCases:
    """Zero-duration and fully-overlapping spans on one track."""

    def test_zero_duration_span_does_not_nest_followers(self, tr):
        from repro.trace.timeline import render_timeline

        tr.emit("zero", "layer_fwd", track="layers", start=1.0, dur=0.0)
        tr.emit("after", "layer_fwd", track="layers", start=1.0, dur=2.0)
        lines = render_timeline(tr).splitlines()
        after = next(l for l in lines if "after" in l)
        # "after" renders un-indented: a zero-duration span contains nothing.
        assert "] after" in after

    def test_identical_intervals_render_as_siblings(self, tr):
        from repro.trace.timeline import render_timeline

        tr.emit("first", "collective_step", track="coll", start=0.0, dur=2.0)
        tr.emit("twin", "collective_step", track="coll", start=0.0, dur=2.0)
        lines = render_timeline(tr).splitlines()
        twin = next(l for l in lines if "twin" in l)
        first = next(l for l in lines if "first" in l)
        # Same indentation: a concurrent duplicate, not containment.
        assert twin.index("twin") == first.index("first")

    def test_containment_still_indents(self, tr):
        from repro.trace.timeline import render_timeline

        tr.emit("outer", "layer_fwd", track="layers", start=0.0, dur=4.0)
        tr.emit("inner", "cpe_compute", track="layers", start=1.0, dur=1.0)
        lines = render_timeline(tr).splitlines()
        inner = next(l for l in lines if "inner" in l)
        assert "]   inner" in inner

    def test_highlight_marks_on_path_spans(self, tr):
        from repro.trace.timeline import render_timeline

        a = tr.emit("a", "cpe_compute", track="cpe", dur=1.0)
        tr.emit("b", "cpe_compute", track="cpe", dur=1.0)
        lines = render_timeline(tr, highlight=[a]).splitlines()
        line_a = next(l for l in lines if "] a <" in l)
        line_b = next(l for l in lines if "] b <" in l)
        assert line_a.startswith("* ")
        assert line_b.startswith("  ")
