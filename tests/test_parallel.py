"""Tests for the multi-node scaling layer: threads, packing, SSGD model."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.parallel import (
    BucketedPacker,
    GradientPacker,
    MultiCGRunner,
    SSGDIterationModel,
    ScalingStudy,
)
from repro.parallel.ssgd import IterationBreakdown
from repro.topology.cost_model import SW_COLLECTIVE_NETWORK


def make_params(shapes, seed=0):
    rng = np.random.default_rng(seed)
    blobs = []
    for i, shape in enumerate(shapes):
        b = Blob(f"p{i}", shape)
        b.data = rng.normal(size=shape).astype(np.float32)
        b.diff = rng.normal(size=shape).astype(np.float32)
        blobs.append(b)
    return blobs


class TestMultiCGRunner:
    def test_iteration_takes_slowest_cg(self):
        r = MultiCGRunner()
        t = r.iteration_time([1.0, 1.2, 0.9, 1.1], model_bytes=0)
        assert t.compute_s == pytest.approx(1.2)

    def test_scalar_compute_accepted(self):
        r = MultiCGRunner()
        assert r.iteration_time(2.0, 0).compute_s == pytest.approx(2.0)

    def test_local_reduce_scales_with_model(self):
        r = MultiCGRunner()
        small = r.local_reduce_time(1e6)
        big = r.local_reduce_time(1e8)
        assert big == pytest.approx(100 * small)

    def test_sync_counts(self):
        r = MultiCGRunner(sync_overhead_s=1e-6)
        assert r.simple_sync_time(10) == pytest.approx(1e-5)
        with pytest.raises(ValueError):
            r.simple_sync_time(-1)

    def test_empty_cg_list_rejected(self):
        with pytest.raises(ValueError):
            MultiCGRunner().iteration_time([], 0)

    def test_total_includes_all_parts(self):
        t = MultiCGRunner().iteration_time(1.0, 1e8)
        assert t.total_s == pytest.approx(t.compute_s + t.sync_s + t.local_reduce_s)


class TestGradientPacker:
    def test_pack_unpack_round_trip(self):
        params = make_params([(3, 4), (7,), (2, 2, 2)])
        packer = GradientPacker(params)
        flat = packer.pack_diffs()
        assert flat.size == 12 + 7 + 8
        original = [p.diff.copy() for p in params]
        packer.unpack_diffs(flat * 2.0)
        for p, orig in zip(params, original):
            np.testing.assert_allclose(p.diff, 2 * orig, rtol=1e-6)

    def test_layout_is_concatenation(self):
        params = make_params([(2,), (3,)])
        packer = GradientPacker(params)
        flat = packer.pack_diffs()
        np.testing.assert_array_equal(flat[:2], params[0].diff)
        np.testing.assert_array_equal(flat[2:], params[1].diff)

    def test_total_bytes(self):
        packer = GradientPacker(make_params([(10,), (5, 2)]))
        assert packer.total_bytes == 20 * 4
        assert packer.layer_bytes == [40, 40]

    def test_size_mismatch_rejected(self):
        packer = GradientPacker(make_params([(4,)]))
        with pytest.raises(ShapeError):
            packer.unpack_diffs(np.zeros(5, dtype=np.float32))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            GradientPacker([])

    def test_packed_allreduce_cheaper_with_latency(self):
        # With a per-message latency, one fused allreduce beats per-layer.
        packer = GradientPacker(make_params([(100,)] * 20))
        cost = lambda nbytes: 1e-3 + nbytes * 1e-9
        assert packer.allreduce_time_packed(cost) < packer.allreduce_time_per_layer(cost)


class TestSSGDIterationModel:
    def model(self, **kw):
        defaults = dict(compute_s=1.0, model_bytes=100e6)
        defaults.update(kw)
        return SSGDIterationModel(**defaults)

    def test_single_node_has_no_allreduce(self):
        m = self.model()
        assert m.allreduce_time(1) == 0.0
        assert m.breakdown(1).allreduce_s == 0.0

    def test_allreduce_grows_with_nodes(self):
        m = self.model()
        assert m.allreduce_time(4) < m.allreduce_time(64) < m.allreduce_time(1024)

    def test_comm_fraction_monotone_in_nodes(self):
        m = self.model()
        fracs = [m.comm_fraction(n) for n in (2, 8, 64, 512, 1024)]
        assert all(a <= b + 1e-12 for a, b in zip(fracs, fracs[1:]))

    def test_larger_batch_lowers_comm_fraction(self):
        small = self.model(compute_s=0.5)
        big = self.model(compute_s=2.0)
        assert big.comm_fraction(1024) < small.comm_fraction(1024)

    def test_speedup_below_linear(self):
        m = self.model()
        for n in (2, 16, 1024):
            assert 0 < m.speedup(n) < n

    def test_round_robin_beats_block_placement(self):
        rr = self.model(placement="round-robin")
        blk = self.model(placement="block")
        assert rr.allreduce_time(1024) < blk.allreduce_time(1024)

    def test_cpe_reduce_beats_mpe(self):
        cpe = self.model(reduce_engine="cpe")
        mpe = self.model(reduce_engine="mpe")
        assert cpe.allreduce_time(1024) < mpe.allreduce_time(1024)

    def test_breakdown_total(self):
        b = self.model().breakdown(64)
        assert isinstance(b, IterationBreakdown)
        assert b.total_s == pytest.approx(
            b.compute_s + b.local_reduce_s + b.allreduce_s + b.update_s + b.io_s
        )

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            self.model().breakdown(0)

    def test_paper_endpoint_alexnet(self):
        """Calibration sanity: a 232.6 MB model with the paper's AlexNet
        B=256 compute time lands near the measured 1024-node operating
        point (comm ~1.1 s, fraction ~30%, speedup ~715)."""
        m = SSGDIterationModel(compute_s=256 / 94.17, model_bytes=232.6e6)
        comm = m.allreduce_time(1024)
        assert 0.9 < comm < 1.4
        assert 0.24 < m.comm_fraction(1024) < 0.36
        assert 600 < m.speedup(1024) < 790

    def test_paper_endpoint_resnet(self):
        """ResNet-50 B=32: 97.7 MB model, ~5.76 s compute -> ~10-15% comm."""
        m = SSGDIterationModel(compute_s=32 / 5.56, model_bytes=97.7e6)
        assert 0.08 < m.comm_fraction(1024) < 0.16
        assert 850 < m.speedup(1024) < 950


class TestScalingStudy:
    def test_run_covers_grid(self):
        study = ScalingStudy(node_counts=(2, 4))
        study.add_config("a", SSGDIterationModel(compute_s=1.0, model_bytes=1e6))
        study.add_config("b", SSGDIterationModel(compute_s=2.0, model_bytes=1e6))
        points = study.run()
        assert len(points) == 4
        assert {(p.label, p.n_nodes) for p in points} == {
            ("a", 2), ("a", 4), ("b", 2), ("b", 4),
        }

    def test_duplicate_label_rejected(self):
        study = ScalingStudy()
        study.add_config("a", SSGDIterationModel(compute_s=1.0, model_bytes=1e6))
        with pytest.raises(ValueError):
            study.add_config("a", SSGDIterationModel(compute_s=1.0, model_bytes=1e6))


def make_params64(shapes, seed=0):
    rng = np.random.default_rng(seed)
    blobs = []
    for i, shape in enumerate(shapes):
        b = Blob(f"p{i}", shape, dtype=np.float64)
        b.data = rng.normal(size=shape)
        b.diff = rng.normal(size=shape)
        blobs.append(b)
    return blobs


class TestGradientPackerDtype:
    """Regressions: the packer used to hard-code float32 buffers and to
    hand out aliasing views on unpack."""

    def test_float64_params_pack_float64(self):
        # A float64 gradient must survive the pack without rounding; the
        # old float32 buffer silently truncated it.
        params = make_params64([(3, 4), (7,)])
        params[0].diff = params[0].diff + 1e-12
        packer = GradientPacker(params)
        assert packer.dtype == np.float64
        flat = packer.pack_diffs()
        assert flat.dtype == np.float64
        np.testing.assert_array_equal(flat[:12], params[0].diff.ravel())
        assert packer.pack_data().dtype == np.float64
        assert packer.total_bytes == (12 + 7) * 8

    def test_float64_round_trip_is_exact(self):
        params = make_params64([(5,), (2, 3)])
        packer = GradientPacker(params)
        original = [p.diff.copy() for p in params]
        packer.unpack_diffs(packer.pack_diffs())
        for p, orig in zip(params, original):
            assert np.array_equal(p.diff, orig)
            assert p.diff.dtype == np.float64

    def test_mixed_dtypes_rejected(self):
        mixed = make_params([(4,)]) + make_params64([(4,)])
        with pytest.raises(ShapeError, match="mixed"):
            GradientPacker(mixed)

    def test_unpack_never_aliases_the_flat_buffer(self):
        # Mutating the packed buffer after unpack must not reach p.diff;
        # astype(copy=False) used to alias them when dtypes matched.
        params = make_params([(3,), (2, 2)])
        packer = GradientPacker(params)
        flat = packer.pack_diffs()
        packer.unpack_diffs(flat)
        before = [p.diff.copy() for p in params]
        flat[:] = -777.0
        for p, want in zip(params, before):
            assert np.array_equal(p.diff, want)


class TestBucketedPacker:
    def test_single_bucket_is_the_fused_packer(self):
        params = make_params([(3, 4), (7,), (2, 2, 2)])
        bucketed = BucketedPacker(params)
        fused = GradientPacker(params)
        assert bucketed.n_buckets == 1
        np.testing.assert_array_equal(bucketed.pack_bucket_diffs(0), fused.pack_diffs())
        np.testing.assert_array_equal(bucketed.pack_diffs(), fused.pack_diffs())
        assert bucketed.total_bytes == fused.total_bytes

    def test_buckets_fill_in_reverse_layer_order(self):
        # 4 params x 40 bytes with an 80-byte bound: bucket 0 must hold
        # the LAST two params (first grads finished by backward).
        params = make_params([(10,)] * 4)
        bucketed = BucketedPacker(params, bucket_bytes=80)
        assert bucketed.bucket_param_indices == [(2, 3), (0, 1)]
        assert bucketed.ready_layer == [2, 0]

    def test_oversized_param_gets_own_bucket(self):
        params = make_params([(4,), (100,), (4,)])
        bucketed = BucketedPacker(params, bucket_bytes=64)
        assert (1,) in bucketed.bucket_param_indices

    def test_partition_covers_every_param_exactly_once(self):
        # Property: any bucket bound yields a partition of the params.
        rng = np.random.default_rng(0xB0CCE7)
        for trial in range(40):
            shapes = [(int(rng.integers(1, 40)),) for _ in range(int(rng.integers(1, 12)))]
            params = make_params(shapes, seed=trial)
            bound = float(rng.integers(4, 400))
            bucketed = BucketedPacker(params, bucket_bytes=bound)
            flat_indices = [i for g in bucketed.bucket_param_indices for i in g]
            assert sorted(flat_indices) == list(range(len(params)))
            assert sum(bucketed.bucket_sizes) == bucketed.total_bytes
            assert bucketed.cumulative_fractions()[-1] == pytest.approx(1.0)

    def test_bucket_round_trip_matches_fused(self):
        params = make_params([(6,), (3, 3), (5,), (2, 4)])
        bucketed = BucketedPacker(params, bucket_bytes=48)
        fused_flat = bucketed.pack_diffs()
        for b in range(bucketed.n_buckets):
            bucketed.unpack_bucket_diffs(b, bucketed.pack_bucket_diffs(b) * 2.0)
        np.testing.assert_array_equal(bucketed.pack_diffs(), fused_flat * 2.0)

    def test_ready_layer_uses_layer_ids(self):
        params = make_params([(10,)] * 4)
        bucketed = BucketedPacker(params, bucket_bytes=80, layer_ids=[0, 0, 1, 2])
        assert bucketed.ready_layer == [1, 0]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ShapeError):
            BucketedPacker([])
        with pytest.raises(ShapeError):
            BucketedPacker(make_params([(4,)]), bucket_bytes=0)
        with pytest.raises(ShapeError):
            BucketedPacker(make_params([(4,)]), layer_ids=[0, 1])


class TestOverlapModel:
    """The SSGD bucketed-overlap accounting rule."""

    def model(self, **kw):
        defaults = dict(compute_s=1.8, model_bytes=250e6)
        defaults.update(kw)
        return SSGDIterationModel(**defaults)

    def test_fused_is_the_degenerate_single_bucket(self):
        # bucket_mb=None must reproduce the historical numbers exactly.
        m = self.model()
        b = m.breakdown(64)
        assert m.bucket_sizes() == (m.model_bytes,)
        assert b.overlap_hidden_s == 0.0
        assert b.allreduce_s == m.allreduce_time(64)

    def test_huge_bucket_bound_is_also_degenerate(self):
        m = self.model(bucket_mb=1e6)
        assert len(m.bucket_sizes()) == 1
        assert m.breakdown(64).allreduce_s == self.model().breakdown(64).allreduce_s

    def test_bucket_sizes_cover_model_within_bound(self):
        m = self.model(bucket_mb=64.0)
        sizes = m.bucket_sizes()
        assert sum(sizes) == pytest.approx(m.model_bytes)
        assert all(s <= 64e6 for s in sizes)

    def test_hidden_plus_exposed_is_total_occupancy(self):
        for bucket_mb in (16.0, 50.0, 96.0, 200.0, None):
            m = self.model(bucket_mb=bucket_mb)
            for n in (2, 16, 128, 1024):
                sched = m.overlap_schedule(n, 1.8)
                assert sched.hidden_s + sched.exposed_s == pytest.approx(
                    sched.total_comm_s
                )
                assert sched.hidden_s >= 0 and sched.exposed_s >= 0

    def test_launches_partition_buckets(self):
        m = self.model(bucket_mb=25.0)
        k = len(m.bucket_sizes())
        for n in (2, 64, 1024):
            sched = m.overlap_schedule(n, 1.8)
            assert sched.n_buckets == k
            assert sched.n_launches <= k
            assert all(c > 0 for c in sched.merged)

    def test_schedule_is_serial_and_causal(self):
        sched = self.model(bucket_mb=32.0).overlap_schedule(64, 1.8)
        free = 0.0
        for r, s, c in zip(sched.ready_s, sched.start_s, sched.comm_s):
            assert s >= r  # never starts before its data exists
            assert s >= free  # one collective at a time
            free = s + c

    def test_single_node_has_no_schedule(self):
        sched = self.model(bucket_mb=32.0).overlap_schedule(1, 1.8)
        assert sched.n_launches == 0
        assert sched.total_comm_s == 0.0

    def test_bucketing_lowers_exposed_comm_at_scale(self):
        # The tentpole claim: at 16+ nodes the bucketed exposed comm
        # fraction is strictly below the fused fraction.
        fused = self.model()
        bucketed = self.model(bucket_mb=96.0)
        for n in (16, 32, 64, 128, 256, 512, 1024):
            bf, bb = fused.breakdown(n), bucketed.breakdown(n)
            assert bb.comm_fraction < bf.comm_fraction, f"n={n}"
            assert bb.overlap_hidden_s > 0.0
            assert bb.total_s < bf.total_s

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            self.model(bucket_mb=-1.0).bucket_sizes()
        with pytest.raises(ValueError):
            self.model(bucket_mb=32.0, backward_frac=1.5).overlap_schedule(4, 1.0)

    def test_scaling_points_report_hidden_time(self):
        study = ScalingStudy(node_counts=(16, 64))
        study.add_config("fused", self.model())
        study.add_config("bucketed", self.model(bucket_mb=96.0))
        points = study.run()
        by = {(p.label, p.n_nodes): p for p in points}
        for n in (16, 64):
            assert by[("fused", n)].overlap_hidden_s == 0.0
            assert by[("bucketed", n)].overlap_hidden_s > 0.0
            assert (
                by[("bucketed", n)].comm_fraction < by[("fused", n)].comm_fraction
            )
