"""Tests for the multi-node scaling layer: threads, packing, SSGD model."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.parallel import (
    GradientPacker,
    MultiCGRunner,
    SSGDIterationModel,
    ScalingStudy,
)
from repro.parallel.ssgd import IterationBreakdown
from repro.topology.cost_model import SW_COLLECTIVE_NETWORK


def make_params(shapes, seed=0):
    rng = np.random.default_rng(seed)
    blobs = []
    for i, shape in enumerate(shapes):
        b = Blob(f"p{i}", shape)
        b.data = rng.normal(size=shape).astype(np.float32)
        b.diff = rng.normal(size=shape).astype(np.float32)
        blobs.append(b)
    return blobs


class TestMultiCGRunner:
    def test_iteration_takes_slowest_cg(self):
        r = MultiCGRunner()
        t = r.iteration_time([1.0, 1.2, 0.9, 1.1], model_bytes=0)
        assert t.compute_s == pytest.approx(1.2)

    def test_scalar_compute_accepted(self):
        r = MultiCGRunner()
        assert r.iteration_time(2.0, 0).compute_s == pytest.approx(2.0)

    def test_local_reduce_scales_with_model(self):
        r = MultiCGRunner()
        small = r.local_reduce_time(1e6)
        big = r.local_reduce_time(1e8)
        assert big == pytest.approx(100 * small)

    def test_sync_counts(self):
        r = MultiCGRunner(sync_overhead_s=1e-6)
        assert r.simple_sync_time(10) == pytest.approx(1e-5)
        with pytest.raises(ValueError):
            r.simple_sync_time(-1)

    def test_empty_cg_list_rejected(self):
        with pytest.raises(ValueError):
            MultiCGRunner().iteration_time([], 0)

    def test_total_includes_all_parts(self):
        t = MultiCGRunner().iteration_time(1.0, 1e8)
        assert t.total_s == pytest.approx(t.compute_s + t.sync_s + t.local_reduce_s)


class TestGradientPacker:
    def test_pack_unpack_round_trip(self):
        params = make_params([(3, 4), (7,), (2, 2, 2)])
        packer = GradientPacker(params)
        flat = packer.pack_diffs()
        assert flat.size == 12 + 7 + 8
        original = [p.diff.copy() for p in params]
        packer.unpack_diffs(flat * 2.0)
        for p, orig in zip(params, original):
            np.testing.assert_allclose(p.diff, 2 * orig, rtol=1e-6)

    def test_layout_is_concatenation(self):
        params = make_params([(2,), (3,)])
        packer = GradientPacker(params)
        flat = packer.pack_diffs()
        np.testing.assert_array_equal(flat[:2], params[0].diff)
        np.testing.assert_array_equal(flat[2:], params[1].diff)

    def test_total_bytes(self):
        packer = GradientPacker(make_params([(10,), (5, 2)]))
        assert packer.total_bytes == 20 * 4
        assert packer.layer_bytes == [40, 40]

    def test_size_mismatch_rejected(self):
        packer = GradientPacker(make_params([(4,)]))
        with pytest.raises(ShapeError):
            packer.unpack_diffs(np.zeros(5, dtype=np.float32))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            GradientPacker([])

    def test_packed_allreduce_cheaper_with_latency(self):
        # With a per-message latency, one fused allreduce beats per-layer.
        packer = GradientPacker(make_params([(100,)] * 20))
        cost = lambda nbytes: 1e-3 + nbytes * 1e-9
        assert packer.allreduce_time_packed(cost) < packer.allreduce_time_per_layer(cost)


class TestSSGDIterationModel:
    def model(self, **kw):
        defaults = dict(compute_s=1.0, model_bytes=100e6)
        defaults.update(kw)
        return SSGDIterationModel(**defaults)

    def test_single_node_has_no_allreduce(self):
        m = self.model()
        assert m.allreduce_time(1) == 0.0
        assert m.breakdown(1).allreduce_s == 0.0

    def test_allreduce_grows_with_nodes(self):
        m = self.model()
        assert m.allreduce_time(4) < m.allreduce_time(64) < m.allreduce_time(1024)

    def test_comm_fraction_monotone_in_nodes(self):
        m = self.model()
        fracs = [m.comm_fraction(n) for n in (2, 8, 64, 512, 1024)]
        assert all(a <= b + 1e-12 for a, b in zip(fracs, fracs[1:]))

    def test_larger_batch_lowers_comm_fraction(self):
        small = self.model(compute_s=0.5)
        big = self.model(compute_s=2.0)
        assert big.comm_fraction(1024) < small.comm_fraction(1024)

    def test_speedup_below_linear(self):
        m = self.model()
        for n in (2, 16, 1024):
            assert 0 < m.speedup(n) < n

    def test_round_robin_beats_block_placement(self):
        rr = self.model(placement="round-robin")
        blk = self.model(placement="block")
        assert rr.allreduce_time(1024) < blk.allreduce_time(1024)

    def test_cpe_reduce_beats_mpe(self):
        cpe = self.model(reduce_engine="cpe")
        mpe = self.model(reduce_engine="mpe")
        assert cpe.allreduce_time(1024) < mpe.allreduce_time(1024)

    def test_breakdown_total(self):
        b = self.model().breakdown(64)
        assert isinstance(b, IterationBreakdown)
        assert b.total_s == pytest.approx(
            b.compute_s + b.local_reduce_s + b.allreduce_s + b.update_s + b.io_s
        )

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            self.model().breakdown(0)

    def test_paper_endpoint_alexnet(self):
        """Calibration sanity: a 232.6 MB model with the paper's AlexNet
        B=256 compute time lands near the measured 1024-node operating
        point (comm ~1.1 s, fraction ~30%, speedup ~715)."""
        m = SSGDIterationModel(compute_s=256 / 94.17, model_bytes=232.6e6)
        comm = m.allreduce_time(1024)
        assert 0.9 < comm < 1.4
        assert 0.24 < m.comm_fraction(1024) < 0.36
        assert 600 < m.speedup(1024) < 790

    def test_paper_endpoint_resnet(self):
        """ResNet-50 B=32: 97.7 MB model, ~5.76 s compute -> ~10-15% comm."""
        m = SSGDIterationModel(compute_s=32 / 5.56, model_bytes=97.7e6)
        assert 0.08 < m.comm_fraction(1024) < 0.16
        assert 850 < m.speedup(1024) < 950


class TestScalingStudy:
    def test_run_covers_grid(self):
        study = ScalingStudy(node_counts=(2, 4))
        study.add_config("a", SSGDIterationModel(compute_s=1.0, model_bytes=1e6))
        study.add_config("b", SSGDIterationModel(compute_s=2.0, model_bytes=1e6))
        points = study.run()
        assert len(points) == 4
        assert {(p.label, p.n_nodes) for p in points} == {
            ("a", 2), ("a", 4), ("b", 2), ("b", 4),
        }

    def test_duplicate_label_rejected(self):
        study = ScalingStudy()
        study.add_config("a", SSGDIterationModel(compute_s=1.0, model_bytes=1e6))
        with pytest.raises(ValueError):
            study.add_config("a", SSGDIterationModel(compute_s=1.0, model_bytes=1e6))
