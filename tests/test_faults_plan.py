"""Unit tests for the fault plane: plans, seeds, injector plumbing.

Covers the seed-string replay spec, the stateless transient decision, the
profile-specific plan sampling, and the ambient injector's install /
null-object contract (the same pattern the tracer and metrics registries
pin).
"""

import numpy as np
import pytest

from repro.errors import (
    CollectiveTimeout,
    FaultError,
    ReproError,
    SnapshotMismatchError,
)
from repro.faults import (
    BASE_SEED,
    NULL_INJECTOR,
    PROFILES,
    TRANSIENT_SITES,
    FaultInjector,
    FaultPlan,
    NullInjector,
    active,
    charge_transient,
    conformance_seeds,
    injecting,
    parse_seed_string,
    seed_string,
    suspended,
    zero_plan,
)
from repro.hw.clock import SimClock


class TestSeedStrings:
    def test_roundtrip(self):
        s = seed_string("chaos", 3)
        assert s == "chaos:0x5caffe:3"
        assert parse_seed_string(s) == ("chaos", BASE_SEED, 3)

    def test_custom_base_seed(self):
        assert parse_seed_string(seed_string("crash", 7, 0xBEEF)) == (
            "crash",
            0xBEEF,
            7,
        )

    @pytest.mark.parametrize("bad", ["", "chaos", "chaos:3", "chaos:xyz:3"])
    def test_malformed_raises(self, bad):
        with pytest.raises(ValueError, match="malformed|invalid literal"):
            parse_seed_string(bad)

    def test_unknown_profile_rejected_by_from_seed(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            FaultPlan.from_seed("meteor:0x5caffe:0", ranks=4)

    def test_conformance_seeds_cover_all_profiles(self):
        seeds = conformance_seeds(n_per_profile=2)
        assert len(seeds) == 2 * len(PROFILES)
        assert {parse_seed_string(s)[0] for s in seeds} == set(PROFILES)


class TestFaultPlan:
    def test_from_seed_is_deterministic(self):
        a = FaultPlan.from_seed("chaos:0x5caffe:5", ranks=8, iterations=10)
        b = FaultPlan.from_seed("chaos:0x5caffe:5", ranks=8, iterations=10)
        assert a == b

    def test_different_indices_differ(self):
        plans = {
            FaultPlan.from_seed(seed_string("transient", i), ranks=4).dma_rate
            for i in range(8)
        }
        assert len(plans) > 1

    def test_profile_shapes(self):
        t = FaultPlan.from_seed(seed_string("transient", 0), ranks=4, iterations=5)
        assert t.dma_rate > 0 and t.rlc_rate > 0 and t.comm_rate > 0
        assert not t.crashes and t.mesh_factor == 1.0 and not t.stragglers

        d = FaultPlan.from_seed(seed_string("degrade", 0), ranks=4, iterations=5)
        assert d.mesh_factor > 1.0 and d.stragglers
        assert d.dma_rate == 0 and not d.crashes

        c = FaultPlan.from_seed(seed_string("crash", 0), ranks=4, iterations=5)
        assert len(c.crashes) == 1

        x = FaultPlan.from_seed(seed_string("chaos", 0), ranks=4, iterations=5)
        assert x.dma_rate > 0 and x.mesh_factor > 1.0 and x.crashes

    def test_crash_never_at_iteration_zero(self):
        for i in range(20):
            plan = FaultPlan.from_seed(seed_string("crash", i), ranks=8, iterations=6)
            for it, rank in plan.crashes:
                assert it >= 1
                assert 0 <= rank < 8

    def test_transient_decision_is_stateless(self):
        plan = FaultPlan.from_seed(seed_string("transient", 1), ranks=4)
        for site in TRANSIENT_SITES:
            ks = [plan.transient_faults(site, n) for n in range(200)]
            assert ks == [plan.transient_faults(site, n) for n in range(200)]
            assert any(k > 0 for k in ks), f"no {site} fault in 200 invocations"
            assert max(ks) <= plan.max_retries

    def test_zero_rate_never_faults(self):
        plan = zero_plan(4, 5)
        assert not plan.has_faults
        assert all(
            plan.transient_faults(site, n) == 0
            for site in TRANSIENT_SITES
            for n in range(50)
        )

    def test_retry_overhead_arithmetic(self):
        plan = zero_plan()
        assert plan.retry_overhead_s(1.0, 0) == 0.0
        # Two retries: 2x base + backoff_base * (1 + 2).
        expected = 2.0 + plan.backoff_base_s * 3
        assert plan.retry_overhead_s(1.0, 2) == pytest.approx(expected)

    def test_crash_queries(self):
        plan = FaultPlan(
            seed="x", profile="crash", ranks=4, iterations=8, crashes=((3, 1),)
        )
        assert plan.crashes_at(3) == {1}
        assert plan.crashes_at(2) == frozenset()
        assert plan.crashed_by(2) == frozenset()
        assert plan.crashed_by(3) == {1} == plan.crashed_by(7)

    def test_straggler_factor_floor(self):
        plan = FaultPlan(
            seed="x", profile="degrade", ranks=4, iterations=1,
            stragglers={2: 3.0},
        )
        assert plan.straggler_factor(2) == 3.0
        assert plan.straggler_factor(0) == 1.0

    def test_describe_mentions_the_mix(self):
        plan = FaultPlan.from_seed(seed_string("chaos", 0), ranks=4, iterations=5)
        text = plan.describe()
        assert "profile=chaos" in text and "crashes=" in text


class TestAmbientInjector:
    def test_disabled_by_default(self):
        fi = active()
        assert fi is NULL_INJECTOR
        assert not fi.enabled

    def test_null_injector_raises_on_use(self):
        for call in (
            lambda: NULL_INJECTOR.transient("dma", 1.0),
            lambda: NULL_INJECTOR.mesh_degrade(),
            lambda: NULL_INJECTOR.comm_scale(0, 1),
            lambda: NULL_INJECTOR.failed_ranks(),
        ):
            with pytest.raises(RuntimeError, match="injector.enabled"):
                call()

    def test_injecting_installs_and_restores(self):
        plan = zero_plan(2, 2)
        with injecting(plan) as fi:
            assert active() is fi
            assert fi.enabled
            with suspended():
                assert active() is NULL_INJECTOR
            assert active() is fi
        assert active() is NULL_INJECTOR

    def test_injector_counts_transients(self):
        plan = FaultPlan.from_seed(seed_string("transient", 0), ranks=2)
        fi = FaultInjector(plan)
        total = 0
        for _ in range(100):
            k, extra = fi.transient("dma", 1e-3)
            total += k
            assert (extra > 0) == (k > 0)
        assert fi.retries == total == fi.injected["dma_corrupt"]
        assert total > 0

    def test_rank_map_translation(self):
        plan = FaultPlan(
            seed="x", profile="degrade", ranks=4, iterations=1,
            stragglers={3: 2.0},
        )
        fi = FaultInjector(plan)
        assert fi.comm_scale(0, 3) == 2.0
        # After a shrink dropping external rank 1, logical 2 is external 3.
        fi.set_rank_map([0, 2, 3])
        assert fi.comm_scale(0, 2) == 2.0
        assert fi.comm_scale(0, 1) == 1.0

    def test_charge_transient_noop_when_disabled(self):
        clock = SimClock()
        assert charge_transient("dma", clock, 1.0, track="dma") == 0
        assert clock.now == 0.0

    def test_charge_transient_charges_fault_category(self):
        plan = FaultPlan(
            seed="always", profile="transient", ranks=1, iterations=1,
            dma_rate=0.999,
        )
        clock = SimClock()
        with injecting(plan):
            k = charge_transient("dma", clock, 1e-3, track="dma")
        assert k > 0
        assert clock.category_total("fault") == clock.now > 0


class TestErrorTypes:
    def test_hierarchy(self):
        assert issubclass(FaultError, ReproError)
        assert issubclass(CollectiveTimeout, FaultError)
        assert issubclass(SnapshotMismatchError, ReproError)

    def test_collective_timeout_carries_ranks(self):
        exc = CollectiveTimeout("dead", ranks=frozenset({2, 5}))
        assert exc.ranks == {2, 5}


class TestSnapshotValidation:
    def _solver(self):
        from repro.frame.layers import (
            DataLayer,
            InnerProductLayer,
            SoftmaxWithLossLayer,
        )
        from repro.frame.net import Net
        from repro.frame.solver import SGDSolver
        from repro.io.dataset import SyntheticImageNet
        from repro.utils.rng import seeded_rng

        net = Net("tiny")
        src = SyntheticImageNet(num_classes=3, sample_shape=(6,), noise=0.1, seed=4)
        net.add(DataLayer("data", src, 4), bottoms=[], tops=["data", "label"])
        net.add(InnerProductLayer("ip", 3, rng=seeded_rng(1)), ["data"], ["logits"])
        net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
        return SGDSolver(net, base_lr=0.05, momentum=0.9)

    def test_mismatched_path_iteration_raises(self, tmp_path):
        import shutil

        from repro.frame.snapshot import load_solver, save_solver, snapshot_path

        solver = self._solver()
        solver.iter = 3
        good = snapshot_path(str(tmp_path / "m"), 3)
        save_solver(solver, good)
        load_solver(solver, good)  # matching path: fine
        bad = snapshot_path(str(tmp_path / "m"), 7)
        shutil.copy(good, bad)
        with pytest.raises(SnapshotMismatchError, match="claims iteration 7"):
            load_solver(solver, bad)

    def test_unnamed_path_skips_validation(self, tmp_path):
        from repro.frame.snapshot import load_solver, save_solver

        solver = self._solver()
        solver.iter = 5
        path = str(tmp_path / "whatever.npz")
        save_solver(solver, path)
        load_solver(solver, path)
        assert solver.iter == 5

    def test_load_clears_stale_velocity(self, tmp_path):
        from repro.frame.snapshot import load_solver, save_solver, snapshot_path

        solver = self._solver()
        path = snapshot_path(str(tmp_path / "m"), 0)
        save_solver(solver, path)  # iteration 0: no velocities stored
        solver.step(2)  # accumulate momentum
        assert solver._velocity
        load_solver(solver, path)
        assert not solver._velocity
        assert solver.iter == 0
