"""Tests for framework extensions: netspec, snapshots, solver family,
grouped convolution, and the extra Caffe layers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.frame.blob import Blob
from repro.frame.layers import (
    ConvolutionLayer,
    DataLayer,
    ELULayer,
    FlattenLayer,
    InnerProductLayer,
    PowerLayer,
    ReLULayer,
    ReshapeLayer,
    ScaleLayer,
    SigmoidLayer,
    SliceLayer,
    SoftmaxWithLossLayer,
    SplitLayer,
    TanHLayer,
)
from repro.frame.net import Net
from repro.frame.netspec import build_from_spec, load_spec, save_spec
from repro.frame.snapshot import load_solver, load_weights, save_solver, save_weights
from repro.frame.solver import SGDSolver
from repro.frame.solvers_ext import (
    AdaGradSolver,
    AdamSolver,
    LARSSolver,
    NesterovSolver,
    RMSPropSolver,
)
from repro.io.dataset import SyntheticImageNet
from repro.utils.rng import seeded_rng

from repro.testing.gradcheck import check_input_gradients, check_param_gradients, run_layer

RNG = np.random.default_rng(77)

MLP_SPEC = {
    "name": "mlp",
    "layers": [
        {"type": "Data", "name": "data", "tops": ["data", "label"],
         "params": {"batch_size": 8}},
        {"type": "InnerProduct", "name": "ip1", "bottoms": ["data"],
         "tops": ["ip1"], "params": {"num_output": 16}},
        {"type": "ReLU", "name": "relu1", "bottoms": ["ip1"], "tops": ["a1"]},
        {"type": "InnerProduct", "name": "ip2", "bottoms": ["a1"],
         "tops": ["logits"], "params": {"num_output": 4}},
        {"type": "SoftmaxWithLoss", "name": "loss",
         "bottoms": ["logits", "label"], "tops": ["loss"]},
    ],
}


def mlp_source():
    return SyntheticImageNet(num_classes=4, sample_shape=(10,), noise=0.2, seed=9)


class TestNetSpec:
    def test_builds_and_trains(self):
        net = build_from_spec(MLP_SPEC, source=mlp_source(), rng=seeded_rng(1))
        solver = SGDSolver(net, base_lr=0.05)
        stats = solver.step(10)
        assert stats.losses[-1] < stats.losses[0]

    def test_spec_round_trip_json(self, tmp_path):
        path = str(tmp_path / "mlp.json")
        save_spec(MLP_SPEC, path)
        spec2 = load_spec(path)
        assert spec2 == MLP_SPEC
        net = build_from_spec(spec2, source=mlp_source())
        assert len(net.layers) == 5

    def test_unknown_type_rejected(self):
        spec = {"layers": [{"type": "Quantum", "name": "q"}]}
        with pytest.raises(ShapeError):
            build_from_spec(spec)

    def test_missing_name_rejected(self):
        spec = {"layers": [{"type": "ReLU"}]}
        with pytest.raises(ShapeError):
            build_from_spec(spec)

    def test_data_layer_needs_source(self):
        with pytest.raises(ShapeError):
            build_from_spec(MLP_SPEC, source=None)

    def test_spec_equivalent_to_imperative(self):
        """A spec-built net and a hand-built net with the same seeds must be
        numerically identical."""
        net_a = build_from_spec(MLP_SPEC, source=mlp_source(), rng=seeded_rng(5))
        net_b = Net("mlp")
        rng = seeded_rng(5)
        net_b.add(DataLayer("data", mlp_source(), 8), [], ["data", "label"])
        net_b.add(InnerProductLayer("ip1", 16, rng=rng), ["data"], ["ip1"])
        net_b.add(ReLULayer("relu1"), ["ip1"], ["a1"])
        net_b.add(InnerProductLayer("ip2", 4, rng=rng), ["a1"], ["logits"])
        net_b.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
        la = net_a.forward()["loss"]
        lb = net_b.forward()["loss"]
        assert la == pytest.approx(lb, rel=1e-6)


class TestSnapshot:
    def make_net(self):
        return build_from_spec(MLP_SPEC, source=mlp_source(), rng=seeded_rng(2))

    def test_weights_round_trip(self, tmp_path):
        net = self.make_net()
        SGDSolver(net, base_lr=0.05).step(3)
        path = str(tmp_path / "w.npz")
        save_weights(net, path)
        fresh = self.make_net()
        before = fresh.forward()["loss"]
        loaded = load_weights(fresh, path)
        assert len(loaded) == len(fresh.params)
        for a, b in zip(net.params, fresh.params):
            np.testing.assert_array_equal(a.data, b.data)
        after = fresh.forward()["loss"]
        assert after != before

    def test_shape_mismatch_rejected(self, tmp_path):
        net = self.make_net()
        path = str(tmp_path / "w.npz")
        save_weights(net, path)
        other_spec = dict(MLP_SPEC)
        other_spec["layers"] = [dict(l) for l in MLP_SPEC["layers"]]
        other_spec["layers"][1] = dict(other_spec["layers"][1], params={"num_output": 17})
        other = build_from_spec(other_spec, source=mlp_source())
        with pytest.raises(ShapeError):
            load_weights(other, path)

    def test_solver_state_round_trip(self, tmp_path):
        net = self.make_net()
        solver = SGDSolver(net, base_lr=0.05, momentum=0.9)
        solver.step(4)
        path = str(tmp_path / "solver.npz")
        save_solver(solver, path)

        resumed_net = self.make_net()
        resumed = SGDSolver(resumed_net, base_lr=0.05, momentum=0.9)
        load_solver(resumed, path)
        assert resumed.iter == 4
        # The snapshot restores weights and solver state, not the data
        # stream; advance the fresh source by the consumed batches so both
        # runs see identical data from here on.
        for _ in range(4):
            resumed_net.layer_by_name("data").source.next_batch(8)
        # Continuing from the snapshot must equal continuing the original.
        a = solver.step(3).losses
        b = resumed.step(3).losses
        np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_non_solver_file_rejected(self, tmp_path):
        net = self.make_net()
        path = str(tmp_path / "w.npz")
        save_weights(net, path)
        with pytest.raises(ShapeError):
            load_solver(SGDSolver(net), path)


class TestSolverFamily:
    def run_solver(self, cls, **kwargs):
        net = build_from_spec(MLP_SPEC, source=mlp_source(), rng=seeded_rng(3))
        solver = cls(net, **kwargs)
        stats = solver.step(25)
        return stats

    def test_nesterov_learns(self):
        stats = self.run_solver(NesterovSolver, base_lr=0.02, momentum=0.9)
        assert stats.losses[-1] < 0.7 * stats.losses[0]

    def test_adagrad_learns(self):
        stats = self.run_solver(AdaGradSolver, base_lr=0.05)
        assert stats.losses[-1] < 0.7 * stats.losses[0]

    def test_rmsprop_learns(self):
        stats = self.run_solver(RMSPropSolver, base_lr=0.005)
        assert stats.losses[-1] < 0.7 * stats.losses[0]

    def test_adam_learns(self):
        stats = self.run_solver(AdamSolver, base_lr=0.01)
        assert stats.losses[-1] < 0.7 * stats.losses[0]

    def test_lars_learns(self):
        stats = self.run_solver(
            LARSSolver, base_lr=1.0, momentum=0.9, weight_decay=1e-4, trust=0.01
        )
        assert stats.losses[-1] < 0.7 * stats.losses[0]

    def test_lars_local_rate_scales_with_norms(self):
        net = build_from_spec(MLP_SPEC, source=mlp_source(), rng=seeded_rng(4))
        solver = LARSSolver(net, base_lr=1.0, trust=0.01, weight_decay=1e-4)
        net.forward()
        net.backward()
        p = net.params[0]
        rate = solver.local_rate(p)
        w = float(np.linalg.norm(p.data))
        g = float(np.linalg.norm(p.diff))
        assert rate == pytest.approx(0.01 * w / (g + 1e-4 * w), rel=1e-6)

    def test_adagrad_rejects_momentum(self):
        net = build_from_spec(MLP_SPEC, source=mlp_source())
        with pytest.raises(ValueError):
            AdaGradSolver(net, momentum=0.5)

    def test_rmsprop_decay_validated(self):
        net = build_from_spec(MLP_SPEC, source=mlp_source())
        with pytest.raises(ValueError):
            RMSPropSolver(net, decay=1.5)

    def test_lars_trust_validated(self):
        net = build_from_spec(MLP_SPEC, source=mlp_source())
        with pytest.raises(ValueError):
            LARSSolver(net, trust=0.0)


class TestGroupedConvolution:
    def test_grouped_equals_blockdiag_ungrouped(self):
        """groups=2 must equal an ungrouped conv whose weight is block
        diagonal in the channel dimension."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 4, 6, 6))
        grouped = ConvolutionLayer("g", 6, 3, pad=1, groups=2, rng=seeded_rng(9))
        blobs = run_layer(grouped, [x])
        y_grouped = blobs[1].data

        full = ConvolutionLayer("f", 6, 3, pad=1, rng=seeded_rng(10))
        blobs_f = run_layer(full, [x])
        w_blockdiag = np.zeros((6, 4, 3, 3), dtype=np.float32)
        w_blockdiag[:3, :2] = grouped.weight.data[:3]
        w_blockdiag[3:, 2:] = grouped.weight.data[3:]
        full.weight.data = w_blockdiag
        full.bias.data = grouped.bias.data
        full.forward(blobs_f[:1], [blobs_f[1]])
        np.testing.assert_allclose(blobs_f[1].data, y_grouped, rtol=1e-5)

    def test_grouped_gradients(self):
        x = RNG.normal(size=(2, 4, 5, 5))
        factory = lambda: ConvolutionLayer("g", 4, 3, pad=1, groups=2, rng=seeded_rng(8))
        check_input_gradients(factory, [x])
        check_param_gradients(factory, [x], param_index=0)

    def test_indivisible_channels_rejected(self):
        layer = ConvolutionLayer("g", 4, 3, groups=2, rng=seeded_rng(0))
        with pytest.raises(ShapeError):
            run_layer(layer, [RNG.normal(size=(1, 3, 5, 5))])
        with pytest.raises(ShapeError):
            ConvolutionLayer("g", 5, 3, groups=2)

    def test_grouped_cost_cheaper_than_full(self):
        xs = (8, 96, 27, 27)
        g2 = ConvolutionLayer("g", 256, 5, pad=2, groups=2, rng=seeded_rng(1))
        g1 = ConvolutionLayer("f", 256, 5, pad=2, rng=seeded_rng(1))
        for layer in (g2, g1):
            run_layer(layer, [RNG.normal(size=xs)])
        # Half the MACs -> cheaper simulated forward.
        assert g2.sw_forward_cost().flops < g1.sw_forward_cost().flops

    def test_lrn_alexnet_variant_uses_groups(self):
        from repro.frame.model_zoo import alexnet

        net = alexnet.build(batch_size=1, variant="lrn")
        conv2 = net.layer_by_name("conv2")
        assert conv2.groups == 2
        assert conv2.weight.shape == (256, 48, 5, 5)


class TestExtraLayers:
    def test_sigmoid_forward_and_gradient(self):
        x = RNG.normal(size=(3, 7))
        layer = SigmoidLayer("s")
        blobs = run_layer(layer, [x])
        np.testing.assert_allclose(blobs[1].data, 1 / (1 + np.exp(-x)), rtol=1e-10)
        check_input_gradients(lambda: SigmoidLayer("s"), [x])

    def test_tanh_gradient(self):
        check_input_gradients(lambda: TanHLayer("t"), [RNG.normal(size=(3, 5))])

    def test_elu_forward_and_gradient(self):
        x = RNG.normal(size=(4, 4))
        x[np.abs(x) < 0.05] = 0.5
        layer = ELULayer("e", alpha=0.7)
        blobs = run_layer(layer, [x])
        expected = np.where(x > 0, x, 0.7 * (np.exp(x) - 1))
        np.testing.assert_allclose(blobs[1].data, expected, rtol=1e-8)
        check_input_gradients(lambda: ELULayer("e", alpha=0.7), [x])

    def test_power_layer(self):
        x = np.abs(RNG.normal(size=(3, 3))) + 0.5
        layer = PowerLayer("p", power=2.0, scale=3.0, shift=1.0)
        blobs = run_layer(layer, [x])
        np.testing.assert_allclose(blobs[1].data, (3 * x + 1) ** 2, rtol=1e-10)
        check_input_gradients(
            lambda: PowerLayer("p", power=2.0, scale=3.0, shift=1.0), [x]
        )

    def test_scale_layer_gradients(self):
        x = RNG.normal(size=(4, 3, 2, 2))
        check_input_gradients(lambda: ScaleLayer("sc"), [x])
        check_param_gradients(lambda: ScaleLayer("sc"), [x], param_index=0)
        check_param_gradients(lambda: ScaleLayer("sc"), [x], param_index=1)

    def test_flatten(self):
        layer = FlattenLayer("fl")
        blobs = run_layer(layer, [RNG.normal(size=(2, 3, 4, 5))])
        assert blobs[1].shape == (2, 60)
        check_input_gradients(lambda: FlattenLayer("fl"), [RNG.normal(size=(2, 3, 4))])

    def test_reshape_with_wildcard(self):
        layer = ReshapeLayer("rs", (2, -1, 5))
        blobs = run_layer(layer, [RNG.normal(size=(2, 4, 5))])
        assert blobs[1].shape == (2, 4, 5)
        layer2 = ReshapeLayer("rs2", (4, 10))
        blobs = run_layer(layer2, [RNG.normal(size=(2, 4, 5))])
        assert blobs[1].shape == (4, 10)

    def test_reshape_validation(self):
        with pytest.raises(ShapeError):
            ReshapeLayer("r", (-1, -1))
        with pytest.raises(ShapeError):
            run_layer(ReshapeLayer("r", (7, -1)), [RNG.normal(size=(2, 5))])

    def test_split_fanout_and_gradient_sum(self):
        layer = SplitLayer("sp", n_tops=3)
        layer.n_tops = 3
        x = RNG.normal(size=(2, 4))
        b = Blob("b", x.shape, dtype=np.float64)
        b.data = x
        tops = [Blob(f"t{i}", dtype=np.float64) for i in range(3)]
        layer.setup([b], tops)
        layer.forward([b], tops)
        for t in tops:
            np.testing.assert_array_equal(t.data, x)
        for i, t in enumerate(tops):
            t.diff = np.full(x.shape, float(i + 1))
        layer.backward(tops, [b])
        np.testing.assert_allclose(b.diff, np.full(x.shape, 6.0))

    def test_slice_is_concat_inverse(self):
        x = RNG.normal(size=(2, 7, 3))
        layer = SliceLayer("sl", slice_points=[2, 5])
        b = Blob("b", x.shape, dtype=np.float64)
        b.data = x
        tops = [Blob(f"t{i}", dtype=np.float64) for i in range(3)]
        layer.setup([b], tops)
        layer.forward([b], tops)
        assert tops[0].shape == (2, 2, 3)
        assert tops[1].shape == (2, 3, 3)
        assert tops[2].shape == (2, 2, 3)
        np.testing.assert_array_equal(
            np.concatenate([t.data for t in tops], axis=1), x
        )
        for t in tops:
            t.diff = np.ones(t.shape)
        layer.backward(tops, [b])
        np.testing.assert_allclose(b.diff, np.ones(x.shape))

    def test_euclidean_loss_value_and_gradient(self):
        from repro.frame.layers import EuclideanLossLayer

        pred = RNG.normal(size=(4, 6))
        target = RNG.normal(size=(4, 6))
        layer = EuclideanLossLayer("l2")
        blobs = run_layer(layer, [pred, target])
        expected = 0.5 * np.sum((pred - target) ** 2) / 4
        assert blobs[2].data[0] == pytest.approx(expected, rel=1e-5)
        blobs[2].diff = np.ones(1)
        layer.backward([blobs[2]], blobs[:2])
        np.testing.assert_allclose(blobs[0].diff, (pred - target) / 4, rtol=1e-6)

    def test_euclidean_loss_shape_mismatch(self):
        from repro.frame.layers import EuclideanLossLayer

        with pytest.raises(ShapeError):
            run_layer(EuclideanLossLayer("l2"), [np.zeros((2, 3)), np.zeros((2, 4))])

    def test_slice_validation(self):
        with pytest.raises(ShapeError):
            SliceLayer("sl", slice_points=[5, 2])
        layer = SliceLayer("sl", slice_points=[9])
        b = Blob("b", (2, 7))
        with pytest.raises(ShapeError):
            layer.check_bottom([b])
