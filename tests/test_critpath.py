"""The critical-path graph builder (:mod:`repro.trace.critpath`).

Unit tests build tiny hand-made traces and pin the graph semantics
(member exclusion, release floors, binding-predecessor walks); the
integration tests pin the identity invariant — scheduling a real training
trace with no factors reproduces its recorded end time bitwise — plus
byte-identical determinism across repeated runs at several rank counts,
and a golden critical-path report of the fig10 16-node overlap schedule
(``tests/golden/critpath_fig10.json``; regenerate with
``python -m tests.test_critpath``).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.errors import CritPathError
from repro.trace.critpath import (
    build_graph,
    critical_path,
    extract_path,
    path_spans,
    render_critpath,
    request_completions,
    schedule,
)
from repro.trace.tracer import Tracer

GOLDEN = pathlib.Path(__file__).parent / "golden" / "critpath_fig10.json"


def fig10_report():
    """The golden scenario: AlexNet B=128 at 16 nodes, 16 MB buckets."""
    from repro.harness.fig10_scalability import whatif_tracer

    tracer, sched = whatif_tracer("AlexNet, B=128", 16, bucket_mb=16)
    return critical_path(tracer), sched


def render(report) -> str:
    return json.dumps(report.to_json(), indent=1, sort_keys=True) + "\n"


class TestGraph:
    def test_member_edges_exclude_components_from_scheduling(self):
        tr = Tracer()
        parent = tr.emit("conv fwd", "layer_fwd", track="layers", dur=3.0)
        comp = tr.emit("conv fwd", "cpe_compute", track="cpe", start=0.0, dur=3.0)
        tr.edge(comp, parent, kind="member")
        graph = build_graph(tr)
        assert graph.n_scheduled == 1
        assert len(graph.member_nodes) == 1
        # The member still prices the container, but never schedules.
        sched = schedule(graph)
        report = critical_path(graph)
        assert report.end_to_end_s == sched.end_to_end_s == 3.0
        assert report.by_resource.get("cpe") == 3.0

    def test_ready_floor_delays_start(self):
        tr = Tracer()
        tr.emit(
            "svc", "collective_service", track="comm/fabric",
            start=5.0, dur=1.0, args={"ready_s": 5.0},
        )
        graph = build_graph(tr)
        sched = schedule(graph)
        idx = graph.nodes.index(next(n for n in graph.nodes if n.span.name == "svc"))
        assert sched.start_s[idx] == 5.0 and sched.end_s[idx] == 6.0

    def test_markers_floor_at_recorded_start(self):
        tr = Tracer()
        mark = tr.instant_event("launch", "collective_launch",
                                track="comm/launch", start=2.0)
        svc = tr.emit("svc", "collective_service", track="comm/fabric",
                      start=2.0, dur=1.0)
        tr.edge(mark, svc)
        graph = build_graph(tr)
        sched = schedule(graph)
        assert sched.end_to_end_s == 3.0

    def test_same_track_spans_chain(self):
        tr = Tracer()
        tr.emit("a", "cpe_compute", track="cpe", dur=1.0)
        tr.emit("b", "cpe_compute", track="cpe", dur=2.0)
        graph = build_graph(tr)
        assert (0, 1) in graph.edges
        # Scaling a's class stretches b's start through the chain.
        sched = schedule(graph, {"cpe": 2.0})
        assert sched.end_to_end_s == 6.0

    def test_dep_edge_across_tracks(self):
        tr = Tracer()
        a = tr.emit("a", "cpe_compute", track="rank0/cpe", dur=2.0)
        b = tr.emit("b", "collective_step", track="comm", start=2.0, dur=1.0)
        tr.edge(a, b)
        graph = build_graph(tr)
        sched = schedule(graph, {"cpe": 3.0})
        assert sched.end_to_end_s == 7.0  # 6.0 compute + 1.0 collective

    def test_binding_predecessor_walk(self):
        """Diamond: the path goes through the slower arm."""
        tr = Tracer()
        src = tr.emit("src", "cpe_compute", track="a", dur=1.0)
        fast = tr.emit("fast", "dma_transfer", track="b", start=1.0, dur=1.0)
        slow = tr.emit("slow", "cpe_compute", track="c", start=1.0, dur=5.0)
        sink = tr.emit("sink", "collective_step", track="d", start=6.0, dur=1.0)
        tr.edge(src, fast)
        tr.edge(src, slow)
        tr.edge(fast, sink)
        tr.edge(slow, sink)
        graph = build_graph(tr)
        sched = schedule(graph)
        path_idx, terminal = extract_path(graph, sched)
        names = [graph.nodes[i].span.name for i in path_idx]
        assert names == ["src", "slow", "sink"]
        assert graph.nodes[terminal].span.name == "sink"
        # The fast arm has 4 seconds of slack.
        report = critical_path(graph)
        slack = {n: s for n, _, s in report.top_slack}
        assert slack["fast"] == pytest.approx(4.0)

    def test_cycle_raises_typed_error(self):
        tr = Tracer()
        a = tr.emit("a", "cpe_compute", track="a", dur=1.0)
        b = tr.emit("b", "cpe_compute", track="b", dur=1.0)
        tr.edge(a, b)
        tr.edge(b, a)
        with pytest.raises(CritPathError):
            schedule(build_graph(tr))

    def test_foreign_edges_ignored(self):
        """Edges whose spans belong to another tracer don't crash the build."""
        other = Tracer()
        o = other.emit("foreign", "cpe_compute", track="x", dur=1.0)
        tr = Tracer()
        a = tr.emit("a", "cpe_compute", track="a", dur=1.0)
        tr.edges.append((o, a, "dep"))
        graph = build_graph(tr)
        assert graph.edges == []


class TestTrainingIdentity:
    def test_identity_schedule_matches_recorded_end_time_bitwise(self):
        from repro.frame.model_zoo import lenet
        from repro.trace.session import trace_training_step

        net = lenet.build(batch_size=16)
        tracer, _ = trace_training_step(net, ranks=8)
        graph = build_graph(tracer)
        assert schedule(graph).end_to_end_s == tracer.end_time()

    def test_path_spans_are_real_spans(self):
        from repro.frame.model_zoo import lenet
        from repro.trace.session import trace_training_step

        net = lenet.build(batch_size=16)
        tracer, _ = trace_training_step(net, ranks=4)
        on_path = path_spans(tracer)
        assert on_path
        ids = {id(s) for s in tracer.spans}
        assert all(id(s) in ids for s in on_path)

    @pytest.mark.parametrize("ranks", [2, 5, 8, 13])
    def test_report_is_byte_deterministic(self, ranks):
        from repro.frame.model_zoo import lenet
        from repro.trace.session import trace_training_step

        reports = []
        for _ in range(2):
            net = lenet.build(batch_size=16)
            tracer, _ = trace_training_step(net, ranks=ranks)
            reports.append(render(critical_path(tracer)))
        assert reports[0] == reports[1]

    def test_render_names_terminal_and_resources(self):
        from repro.frame.model_zoo import lenet
        from repro.trace.session import trace_training_step

        net = lenet.build(batch_size=16)
        tracer, _ = trace_training_step(net, ranks=4)
        text = render_critpath(critical_path(tracer))
        assert "critical path" in text
        assert "cpe" in text and "end-to-end" in text


class TestServing:
    def test_request_completions_cover_every_served_request(self):
        from repro.serve.arrivals import ArrivalPlan
        from repro.serve.costmodel import TableCostModel
        from repro.serve.engine import ServeConfig, ServingEngine
        from repro.trace.tracer import tracing

        requests = ArrivalPlan.from_seed(
            "steady:0xc0ffee:0", rate_rps=250.0, n_requests=6
        ).generate()
        engine = ServingEngine(
            TableCostModel({b: 0.010 for b in range(1, 3)}),
            ServeConfig(max_batch=2, max_wait_s=0.005, queue_bound=4, slo_s=0.05),
        )
        with tracing() as tr:
            report = engine.run(requests, model="table", arrivals="steady")
        graph = build_graph(tr)
        done = request_completions(graph, schedule(graph))
        served = [r for r in report.records if not r.shed]
        assert set(done) == {r.rid for r in served}
        for rec in served:
            assert done[rec.rid] == pytest.approx(rec.arrival_s + rec.latency_s)


class TestGolden:
    def test_fig10_exposed_collective_matches_overlap_schedule(self):
        # The report sums per-launch exposed_s in path order; the schedule
        # computes total - hidden. Same quantity, different float grouping
        # — equal to within one ulp of accumulation.
        report, sched = fig10_report()
        assert report.collective_exposed_s == pytest.approx(sched.exposed_s, rel=1e-12)
        assert report.by_resource.get("collective", 0.0) > 0

    def test_matches_checked_in_golden_file(self):
        assert GOLDEN.is_file(), (
            f"golden file missing: {GOLDEN}; regenerate with "
            "`python -m tests.test_critpath`"
        )
        report, _ = fig10_report()
        assert render(report) == GOLDEN.read_text()


if __name__ == "__main__":  # pragma: no cover - golden regeneration helper
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(render(fig10_report()[0]))
    print(f"wrote {GOLDEN}")
