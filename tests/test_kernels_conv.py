"""Tests for im2col/col2im and the convolution plans (Sec. IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError, ShapeError
from repro.kernels import (
    ExplicitConvPlan,
    ImplicitConvPlan,
    col2im,
    im2col,
)
from repro.kernels.autotune import ConvConfig, PlanAutotuner, select_conv_plan
from repro.kernels.im2col import conv_out_dim


def reference_conv(x, w, b, stride, pad):
    """Dense direct convolution, the independent oracle."""
    bs, ni, h, ww = x.shape
    no, _, k, _ = w.shape
    ho = conv_out_dim(h, k, stride, pad)
    wo = conv_out_dim(ww, k, stride, pad)
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.zeros((bs, no, ho, wo), dtype=x.dtype)
    for bi in range(bs):
        for o in range(no):
            for i in range(ho):
                for j in range(wo):
                    patch = xp[bi, :, i * stride : i * stride + k, j * stride : j * stride + k]
                    out[bi, o, i, j] = np.sum(patch * w[o])
    if b is not None:
        out += b.reshape(1, no, 1, 1)
    return out


class TestIm2col:
    @settings(max_examples=20, deadline=None)
    @given(
        c=st.integers(min_value=1, max_value=4),
        h=st.integers(min_value=3, max_value=10),
        w=st.integers(min_value=3, max_value=10),
        k=st.integers(min_value=1, max_value=3),
        stride=st.integers(min_value=1, max_value=2),
        pad=st.integers(min_value=0, max_value=2),
    )
    def test_im2col_matches_patch_extraction(self, c, h, w, k, stride, pad):
        rng = np.random.default_rng(42)
        x = rng.normal(size=(c, h, w))
        cols = im2col(x, k, stride, pad)
        ho = conv_out_dim(h, k, stride, pad)
        wo = conv_out_dim(w, k, stride, pad)
        assert cols.shape == (c * k * k, ho * wo)
        xp = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
        for oi in range(ho):
            for oj in range(wo):
                patch = xp[:, oi * stride : oi * stride + k, oj * stride : oj * stride + k]
                np.testing.assert_allclose(cols[:, oi * wo + oj], patch.ravel())

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> for random x, y: the defining
        # property of the backward transform.
        rng = np.random.default_rng(7)
        shape, k, stride, pad = (3, 8, 9), 3, 2, 1
        x = rng.normal(size=shape)
        cols_shape = im2col(x, k, stride, pad).shape
        y = rng.normal(size=cols_shape)
        lhs = np.sum(im2col(x, k, stride, pad) * y)
        rhs = np.sum(x * col2im(y, shape, k, stride, pad))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_shape_validation(self):
        with pytest.raises(ShapeError):
            col2im(np.zeros((9, 10)), (1, 5, 5), k=3, stride=1, pad=0)

    def test_im2col_requires_3d(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((2, 3)), 1)

    def test_nonpositive_output_rejected(self):
        with pytest.raises(ShapeError):
            conv_out_dim(2, 5, 1, 0)


class TestExplicitConvPlan:
    @settings(max_examples=15, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=3),
        ni=st.integers(min_value=1, max_value=4),
        no=st.integers(min_value=1, max_value=4),
        hw=st.integers(min_value=4, max_value=8),
        k=st.integers(min_value=1, max_value=3),
        stride=st.integers(min_value=1, max_value=2),
        pad=st.integers(min_value=0, max_value=1),
    )
    def test_forward_matches_reference(self, batch, ni, no, hw, k, stride, pad):
        rng = np.random.default_rng(batch + ni * 10)
        x = rng.normal(size=(batch, ni, hw, hw))
        w = rng.normal(size=(no, ni, k, k))
        b = rng.normal(size=no)
        plan = ExplicitConvPlan(batch, ni, no, hw, hw, k, stride, pad)
        np.testing.assert_allclose(
            plan.forward(x, w, b), reference_conv(x, w, b, stride, pad), rtol=1e-9
        )

    def test_backward_gradients_numerical(self):
        rng = np.random.default_rng(3)
        batch, ni, no, hw, k = 2, 2, 3, 5, 3
        x = rng.normal(size=(batch, ni, hw, hw))
        w = rng.normal(size=(no, ni, k, k))
        plan = ExplicitConvPlan(batch, ni, no, hw, hw, k, stride=1, pad=1)
        dy = rng.normal(size=(batch, no, hw, hw))
        dx, dw, db = plan.backward(x, w, dy)

        eps = 1e-6
        # Check a sample of weight gradients by central differences.
        for idx in [(0, 0, 0, 0), (2, 1, 2, 2), (1, 0, 1, 2)]:
            wp = w.copy(); wp[idx] += eps
            wm = w.copy(); wm[idx] -= eps
            fp = np.sum(plan.forward(x, wp, None) * dy)
            fm = np.sum(plan.forward(x, wm, None) * dy)
            assert dw[idx] == pytest.approx((fp - fm) / (2 * eps), rel=1e-4)
        # And a sample of input gradients.
        for idx in [(0, 0, 0, 0), (1, 1, 3, 4)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fp = np.sum(plan.forward(xp, w, None) * dy)
            fm = np.sum(plan.forward(xm, w, None) * dy)
            assert dx[idx] == pytest.approx((fp - fm) / (2 * eps), rel=1e-4)
        # Bias gradient is the spatial/batch sum of dy.
        np.testing.assert_allclose(db, dy.sum(axis=(0, 2, 3)), rtol=1e-10)

    def test_need_input_grad_false(self):
        plan = ExplicitConvPlan(1, 2, 2, 4, 4, 3, pad=1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3))
        dy = rng.normal(size=(1, 2, 4, 4))
        dx, dw, db = plan.backward(x, w, dy, need_input_grad=False)
        assert dx is None
        assert dw.shape == w.shape

    def test_1x1_skips_im2col_cost(self):
        with_im2col = ExplicitConvPlan(4, 64, 64, 14, 14, 3, pad=1)
        one_by_one = ExplicitConvPlan(4, 64, 64, 14, 14, 1)
        assert one_by_one.is_1x1 and not with_im2col.is_1x1
        assert one_by_one.cost_forward().dma_bytes < with_im2col.cost_forward().dma_bytes

    def test_cost_directions_all_positive(self):
        plan = ExplicitConvPlan(2, 16, 32, 28, 28, 3, pad=1)
        for c in (plan.cost_forward(), plan.cost_backward_weight(), plan.cost_backward_input()):
            assert c.total_s > 0
            assert c.flops > 0


class TestImplicitConvPlan:
    def test_forward_matches_explicit(self):
        rng = np.random.default_rng(11)
        batch, c, hw, k = 2, 64, 8, 3
        x = rng.normal(size=(batch, c, hw, hw)).astype(np.float64)
        w = rng.normal(size=(c, c, k, k))
        b = rng.normal(size=c)
        imp = ImplicitConvPlan(batch, c, c, hw, hw, k, stride=1, pad=1)
        exp = ExplicitConvPlan(batch, c, c, hw, hw, k, stride=1, pad=1)
        np.testing.assert_allclose(
            imp.forward(x, w, b), exp.forward(x, w, b), rtol=1e-9
        )

    def test_forward_stride_2_matches(self):
        rng = np.random.default_rng(12)
        x = rng.normal(size=(1, 64, 9, 9))
        w = rng.normal(size=(64, 64, 3, 3))
        imp = ImplicitConvPlan(1, 64, 64, 9, 9, 3, stride=2, pad=1)
        exp = ExplicitConvPlan(1, 64, 64, 9, 9, 3, stride=2, pad=1)
        np.testing.assert_allclose(imp.forward(x, w, None), exp.forward(x, w, None), rtol=1e-9)

    def test_small_channels_rejected(self):
        # conv1_1 of VGG: Ni=3 cannot use the implicit plan (Table II "-").
        with pytest.raises(PlanError):
            ImplicitConvPlan(1, 3, 64, 224, 224, 3, pad=1)

    def test_backward_needs_128_channels(self):
        # conv1_2 (64->64): forward available, backward not (Table II).
        plan = ImplicitConvPlan(1, 64, 64, 28, 28, 3, pad=1)
        assert plan.cost_forward().total_s > 0
        with pytest.raises(PlanError):
            plan.cost_backward_weight()
        with pytest.raises(PlanError):
            plan.cost_backward_input()

    def test_backward_available_at_128(self):
        plan = ImplicitConvPlan(1, 128, 128, 28, 28, 3, pad=1)
        assert plan.cost_backward_weight().total_s > 0
        assert plan.cost_backward_input().total_s > 0

    def test_efficiency_grows_with_channels(self):
        e64 = ImplicitConvPlan(1, 64, 64, 28, 28, 3, pad=1)._efficiency()
        e256 = ImplicitConvPlan(1, 256, 256, 28, 28, 3, pad=1)._efficiency()
        e512 = ImplicitConvPlan(1, 512, 512, 28, 28, 3, pad=1)._efficiency()
        assert e64 < e256 < e512


class TestAutotuner:
    def test_conv1_1_falls_back_to_explicit(self):
        cfg = ConvConfig(batch=32, ni=3, no=64, height=224, width=224, k=3, pad=1)
        choice = select_conv_plan(cfg, "forward")
        assert choice.plan_name == "explicit"
        assert len(choice.alternatives) == 1

    def test_large_channel_layer_has_both_candidates(self):
        cfg = ConvConfig(batch=32, ni=256, no=256, height=56, width=56, k=3, pad=1)
        choice = select_conv_plan(cfg, "forward")
        assert len(choice.alternatives) == 2

    def test_winner_is_min_cost(self):
        cfg = ConvConfig(batch=32, ni=512, no=512, height=14, width=14, k=3, pad=1)
        choice = select_conv_plan(cfg, "forward")
        best = min(choice.alternatives, key=lambda nc: nc[1])
        assert choice.plan_name == best[0]
        assert choice.cost.total_s == pytest.approx(best[1])

    def test_cache_probes_once(self):
        tuner = PlanAutotuner()
        cfg = ConvConfig(batch=8, ni=128, no=128, height=28, width=28, k=3, pad=1)
        a = tuner.choose(cfg, "forward")
        b = tuner.choose(cfg, "forward")
        assert a is b
        assert tuner.probe_count == 1
        tuner.choose(cfg, "backward_weight")
        assert tuner.probe_count == 2
        tuner.clear()
        assert tuner.probe_count == 0

    def test_bad_direction_rejected(self):
        cfg = ConvConfig(batch=1, ni=8, no=8, height=8, width=8, k=3, pad=1)
        with pytest.raises(ValueError):
            select_conv_plan(cfg, "sideways")
