"""Unit tests for the repro.metrics counter registry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.metrics.registry import (
    Counter,
    Gauge,
    HighWaterMark,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullRegistry,
    active,
    collecting,
    install,
    suspended,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter()
        c.inc(3)
        c.inc(0.5)
        assert c.value == 3.5

    def test_monotonic_rejects_negative(self):
        c = Counter()
        with pytest.raises(ValueError, match=">= 0"):
            c.inc(-1)
        assert c.value == 0.0

    def test_rejects_nan(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(float("nan"))


class TestHighWaterMark:
    def test_keeps_maximum(self):
        hwm = HighWaterMark()
        for v in (3, 7, 2, 7, 1):
            hwm.update(v)
        assert hwm.value == 7
        assert hwm.count == 5


class TestHistogram:
    @pytest.mark.parametrize("q", [0, 1, 25, 50, 73.5, 95, 99, 100])
    @pytest.mark.parametrize("n", [1, 2, 5, 100, 997])
    def test_percentile_matches_numpy_linear(self, q, n):
        rng = np.random.default_rng(n)
        h = Histogram()
        samples = rng.normal(size=n)
        for s in samples:
            h.observe(s)
        assert h.percentile(q) == pytest.approx(
            float(np.percentile(samples, q, method="linear")), rel=1e-12, abs=1e-12
        )

    def test_percentile_validates(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.percentile(5)  # empty
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_stats(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3 and h.sum == 6.0 and h.mean == 2.0
        assert h.min == 1.0 and h.max == 3.0


class TestRegistry:
    def test_counter_accumulates_per_label_set(self):
        mx = MetricsRegistry()
        mx.count("dma.bytes", 100, dir="get")
        mx.count("dma.bytes", 50, dir="get")
        mx.count("dma.bytes", 30, dir="put")
        assert mx.value("dma.bytes", dir="get") == 150
        assert mx.value("dma.bytes", dir="put") == 30
        assert mx.value("dma.bytes") == 180  # label superset sums all

    def test_kind_conflict_raises(self):
        mx = MetricsRegistry()
        mx.count("x", 1)
        with pytest.raises(TypeError, match="already registered"):
            mx.gauge("x", 2.0)

    def test_gauge_and_high_water(self):
        mx = MetricsRegistry()
        mx.gauge("level", 5.0)
        mx.gauge("level", 2.0)
        assert mx.value("level") == 2.0
        mx.high_water("hwm", 5.0)
        mx.high_water("hwm", 3.0)
        assert mx.value("hwm") == 5.0

    def test_labelled_context_merges(self):
        mx = MetricsRegistry()
        with mx.labelled(rank="0"):
            mx.count("comm.steps", 1)
            with mx.labelled(collective="rhd"):
                mx.count("comm.steps", 1)
        assert mx.get("comm.steps", rank="0") is not None
        assert mx.get("comm.steps", rank="0", collective="rhd") is not None
        assert mx.value("comm.steps", rank="0") == 2
        assert mx.value("comm.steps", collective="rhd") == 1

    def test_explicit_labels_win_over_context(self):
        mx = MetricsRegistry()
        with mx.labelled(dir="ambient"):
            mx.count("dma.bytes", 7, dir="get")
        assert mx.value("dma.bytes", dir="get") == 7
        assert mx.value("dma.bytes", dir="ambient") == 0

    def test_histogram_contributes_sample_sum_to_value(self):
        mx = MetricsRegistry()
        mx.observe("dma.achieved_frac", 0.25)
        mx.observe("dma.achieved_frac", 0.75)
        assert mx.value("dma.achieved_frac") == 1.0

    def test_snapshot_is_json_serializable(self):
        mx = MetricsRegistry()
        mx.count("dma.bytes", 10, dir="get")
        mx.observe("cpe.efficiency", 0.8)
        mx.high_water("ldm.high_water_bytes", 4096)
        snap = mx.snapshot()
        round_tripped = json.loads(json.dumps(snap))
        assert round_tripped["dma.bytes"][0]["value"] == 10
        assert round_tripped["cpe.efficiency"][0]["count"] == 1
        assert round_tripped["ldm.high_water_bytes"][0]["kind"] == "high_water"


class TestDisabledMode:
    def test_default_ambient_is_shared_null(self):
        assert active() is NULL_METRICS
        assert not active().enabled

    def test_null_registry_mutators_raise(self):
        null = NullRegistry()
        for mutate in (
            lambda: null.count("x", 1),
            lambda: null.gauge("x", 1.0),
            lambda: null.high_water("x", 1.0),
            lambda: null.observe("x", 1.0),
        ):
            with pytest.raises(RuntimeError, match="guard instrumentation"):
                mutate()

    def test_null_registry_labelled_is_noop(self):
        with NULL_METRICS.labelled(collective="rhd"):
            pass  # must not raise and must not record anything
        assert len(NULL_METRICS) == 0

    def test_collecting_installs_and_restores(self):
        assert active() is NULL_METRICS
        with collecting() as mx:
            assert active() is mx
            assert mx.enabled
        assert active() is NULL_METRICS

    def test_suspended_disables_inside_collecting(self):
        with collecting() as mx:
            mx.count("a", 1)
            with suspended():
                assert active() is NULL_METRICS
            assert active() is mx

    def test_install_returns_previous(self):
        mx = MetricsRegistry()
        prev = install(mx)
        try:
            assert prev is NULL_METRICS
            assert active() is mx
        finally:
            install(prev)
