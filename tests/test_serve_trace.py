"""Serving trace spans and the golden Chrome export.

A serving session with a table cost model and ``steady`` arrivals is fully
deterministic, so the exported Chrome trace-event JSON is pinned
byte-for-byte (``tests/golden/trace_serve.json``) — the serving analogue of
the training goldens. Structure tests assert the span taxonomy lands on the
``serve/*`` tracks the docs promise.
"""

from __future__ import annotations

import json
import pathlib

from repro.serve.arrivals import ArrivalPlan, Request
from repro.serve.costmodel import TableCostModel
from repro.serve.engine import ServeConfig, ServingEngine
from repro.trace import Tracer, to_chrome, validate_chrome
from repro.trace.tracer import tracing

GOLDEN = pathlib.Path(__file__).parent / "golden" / "trace_serve.json"


def serve_traced() -> Tracer:
    """Six steady requests through a 10 ms table model, batches of two.

    4 ms arrival gaps against a 5 ms batching deadline: the second request
    of each pair arrives before the first one's deadline, so every dispatch
    carries a full batch of two.
    """
    requests = ArrivalPlan.from_seed(
        "steady:0xc0ffee:0", rate_rps=250.0, n_requests=6
    ).generate()
    engine = ServingEngine(
        TableCostModel({b: 0.010 for b in range(1, 3)}),
        ServeConfig(max_batch=2, max_wait_s=0.005, queue_bound=4, slo_s=0.05),
    )
    with tracing() as tr:
        engine.run(requests, model="table", arrivals="steady")
    return tr


def render(tracer: Tracer) -> str:
    return json.dumps(to_chrome(tracer), indent=1, sort_keys=True) + "\n"


class TestGolden:
    def test_matches_checked_in_golden_file(self):
        assert GOLDEN.is_file(), (
            f"golden file missing: {GOLDEN}; regenerate with "
            "`python -m tests.test_serve_trace`"
        )
        assert render(serve_traced()) == GOLDEN.read_text()

    def test_golden_file_is_valid_chrome_format(self):
        assert validate_chrome(json.loads(GOLDEN.read_text())) == []


class TestStructure:
    def test_spans_land_on_the_serve_tracks(self):
        tr = serve_traced()
        assert set(tr.tracks()) == {
            "serve/requests", "serve/scheduler", "serve/engine"
        }

    def test_span_taxonomy(self):
        tr = serve_traced()
        queued = tr.by_category("request_queued")
        dispatch = tr.by_category("batch_dispatch")
        compute = tr.by_category("batch_compute")
        assert len(queued) == 6
        assert len(dispatch) == len(compute) == 3
        assert all(s.instant for s in queued + dispatch)
        assert all(not s.instant and s.dur_s == 0.010 for s in compute)

    def test_compute_spans_never_overlap(self):
        """One engine: batch k+1 starts at or after batch k ends."""
        compute = serve_traced().by_category("batch_compute")
        for a, b in zip(compute, compute[1:]):
            assert b.start_s >= a.end_s - 1e-12

    def test_shed_requests_emit_instants(self):
        burst = tuple(Request(rid=i, arrival_s=0.001) for i in range(8))
        engine = ServingEngine(
            TableCostModel({1: 0.010, 2: 0.010}),
            ServeConfig(max_batch=2, max_wait_s=0.0, queue_bound=2, slo_s=0.05),
        )
        with tracing() as tr:
            report = engine.run(burst)
        shed = tr.by_category("request_shed")
        assert report.n_shed > 0
        assert len(shed) == report.n_shed
        assert all(s.track == "serve/requests" and s.instant for s in shed)


if __name__ == "__main__":  # pragma: no cover - golden regeneration helper
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(render(serve_traced()))
    print(f"wrote {GOLDEN}")
