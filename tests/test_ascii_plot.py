"""Tests for the ASCII plot helper."""

import pytest

from repro.utils.ascii_plot import MARKERS, PlotSeries, ascii_plot


def series(label="s", x=(1, 10, 100), y=(1, 10, 100)):
    return PlotSeries(label=label, x=tuple(x), y=tuple(y))


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = ascii_plot([series("alpha"), series("beta", y=(2, 20, 200))])
        assert MARKERS[0] in text and MARKERS[1] in text
        assert "alpha" in text and "beta" in text

    def test_loglog_diagonal(self):
        # A power law renders as a straight diagonal in log-log: the marker
        # column should increase with the row from bottom to top.
        text = ascii_plot([series()], logx=True, logy=True, width=30, height=10)
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        cols = [r.index("o") for r in rows if "o" in r]
        # Rows render top (max y) to bottom (min y); with y increasing in
        # x, the marker column decreases going down.
        assert cols == sorted(cols, reverse=True)

    def test_axis_labels(self):
        text = ascii_plot(
            [series()], logx=True, title="T", xlabel="nodes", ylabel="speedup"
        )
        assert text.startswith("T")
        assert "x: nodes" in text and "y: speedup" in text
        assert "100" in text  # max labels rendered

    def test_constant_series_does_not_crash(self):
        text = ascii_plot([series(y=(5, 5, 5))])
        assert "o" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([])
        with pytest.raises(ValueError):
            ascii_plot([PlotSeries("s", (1, 2), (1,))])
        with pytest.raises(ValueError):
            ascii_plot([series(y=(0, 1, 2))], logy=True)
