"""Seeded arrival streams (:mod:`repro.serve.arrivals`).

The replay contract is the whole point: a seed string fully determines the
request stream, bit-for-bit, in the exact format the fault plans already
use — so a latency regression reported by CI replays locally from the seed
in the report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.arrivals import (
    ArrivalPlan,
    BASE_SEED,
    PROFILES,
    Request,
    parse_seed_string,
    seed_string,
)


class TestSeedStrings:
    def test_round_trip(self):
        for profile in PROFILES:
            s = seed_string(profile, 7)
            assert parse_seed_string(s) == (profile, BASE_SEED, 7)

    def test_hex_with_and_without_prefix_are_the_same_seed(self):
        assert parse_seed_string("poisson:0xc0ffee:0") == parse_seed_string(
            "poisson:c0ffee:0"
        )

    @pytest.mark.parametrize("bad", ["", "poisson", "poisson:zz:0", "a:0x1:b"])
    def test_malformed_seed_raises(self, bad):
        with pytest.raises(ValueError, match="malformed arrival seed"):
            parse_seed_string(bad)

    def test_unknown_profile_rejected_at_plan_build(self):
        with pytest.raises(ValueError, match="unknown arrival profile"):
            ArrivalPlan.from_seed("tsunami:0x1:0", rate_rps=10, n_requests=5)

    @pytest.mark.parametrize("rate,n", [(0, 5), (-1.0, 5), (10, 0)])
    def test_bad_load_shape_rejected(self, rate, n):
        with pytest.raises(ValueError):
            ArrivalPlan.from_seed("poisson:0x1:0", rate_rps=rate, n_requests=n)


class TestReplay:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_same_seed_same_stream(self, profile):
        kw = dict(rate_rps=25.0, n_requests=64)
        a = ArrivalPlan.from_seed(seed_string(profile, 3), **kw).generate()
        b = ArrivalPlan.from_seed(seed_string(profile, 3), **kw).generate()
        assert a == b

    @pytest.mark.parametrize("profile", ["poisson", "bursty"])
    def test_different_index_different_stream(self, profile):
        kw = dict(rate_rps=25.0, n_requests=64)
        a = ArrivalPlan.from_seed(seed_string(profile, 0), **kw).generate()
        b = ArrivalPlan.from_seed(seed_string(profile, 1), **kw).generate()
        assert a != b

    @pytest.mark.parametrize("profile", PROFILES)
    def test_arrivals_non_decreasing_and_ids_sequential(self, profile):
        reqs = ArrivalPlan.from_seed(
            seed_string(profile, 5), rate_rps=100.0, n_requests=128
        ).generate()
        assert [r.rid for r in reqs] == list(range(128))
        times = [r.arrival_s for r in reqs]
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert all(t > 0 for t in times)

    def test_steady_profile_is_exact_fixed_spacing(self):
        reqs = ArrivalPlan.from_seed(
            "steady:0x1:0", rate_rps=50.0, n_requests=10
        ).generate()
        gaps = np.diff([0.0] + [r.arrival_s for r in reqs])
        assert np.allclose(gaps, 0.02)

    @pytest.mark.parametrize("profile", ["poisson", "bursty"])
    def test_mean_rate_is_roughly_nominal(self, profile):
        n = 4000
        reqs = ArrivalPlan.from_seed(
            seed_string(profile, 0), rate_rps=200.0, n_requests=n
        ).generate()
        realized = n / reqs[-1].arrival_s
        assert realized == pytest.approx(200.0, rel=0.15)

    def test_requests_are_immutable(self):
        req = Request(rid=0, arrival_s=1.0)
        with pytest.raises(AttributeError):
            req.arrival_s = 2.0
