"""Pipeline trainer bit-identity (:mod:`repro.pipeline.trainer`).

The defining invariant: pipelined training — stage-sliced layer ops with
boundary tensors really crossing the priced p2p transport — produces
weights *bit-identical* to single-rank ``SGDSolver(iter_size=M)``
gradient accumulation, for every schedule and stage count. The mutation
test proves the transport is load-bearing: corrupting what ``recv``
returns corrupts training.

Tier-1 runs LeNet's full (S, M, schedule) grid plus reduced AlexNet/VGG
configs; set ``REPRO_HEAVY=1`` to sweep the acceptance grid
(LeNet/AlexNet/VGG × S ∈ {2, 4} × M ∈ {1, 4, 8} × both schedules).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.frame.model_zoo import alexnet, lenet, vgg
from repro.frame.solver import SGDSolver
from repro.pipeline import PipelineTrainer

HEAVY = bool(int(os.environ.get("REPRO_HEAVY", "0") or "0"))

SOLVER_KW = dict(base_lr=0.05, momentum=0.9, weight_decay=1e-4)


def lenet_factory(rank: int = 0):
    return lenet.build(batch_size=4, rng=np.random.default_rng(21))


def alexnet_factory(rank: int = 0):
    return alexnet.build(batch_size=1, num_classes=10,
                         rng=np.random.default_rng(22))


def vgg_factory(rank: int = 0):
    return vgg.build_vgg16(batch_size=1, num_classes=10,
                           rng=np.random.default_rng(23))


_REFERENCE_CACHE: dict = {}


def reference_weights(factory, n_microbatches, n_iters):
    """Single-rank gradient accumulation: the ground truth (cached — the
    same (factory, M, iters) reference serves several pipeline configs)."""
    key = (factory, n_microbatches, n_iters)
    if key not in _REFERENCE_CACHE:
        net = factory(0)
        solver = SGDSolver(net, iter_size=n_microbatches, **SOLVER_KW)
        solver.step(n_iters)
        _REFERENCE_CACHE[key] = [p.data.copy() for p in net.params]
    return _REFERENCE_CACHE[key]


def pipeline_weights(factory, n_stages, n_microbatches, schedule, n_iters,
                     replicas=1):
    trainer = PipelineTrainer(
        factory,
        n_stages,
        n_microbatches=n_microbatches,
        schedule=schedule,
        replicas=replicas,
        **SOLVER_KW,
    )
    stats = trainer.step(n_iters)
    return [p.data.copy() for p in trainer.nets[0].params], trainer, stats


def assert_bitwise_equal(got, want, context=""):
    assert len(got) == len(want)
    for i, (g, w) in enumerate(zip(got, want)):
        assert g.dtype == w.dtype
        assert np.array_equal(g, w), f"param {i} diverges {context}"


# --------------------------------------------------------------------------- #
# bit-identity grids
# --------------------------------------------------------------------------- #
LENET_GRID = [
    (s, m, sched)
    for s in (2, 4)
    for m in (1, 4, 8)
    for sched in ("fill_drain", "1f1b")
]


class TestLeNetIdentity:
    @pytest.mark.parametrize("n_stages,n_microbatches,schedule", LENET_GRID)
    def test_matches_single_rank_accumulation(
        self, n_stages, n_microbatches, schedule
    ):
        want = reference_weights(lenet_factory, n_microbatches, n_iters=2)
        got, _, _ = pipeline_weights(
            lenet_factory, n_stages, n_microbatches, schedule, n_iters=2
        )
        assert_bitwise_equal(
            got, want, f"(S={n_stages}, M={n_microbatches}, {schedule})"
        )

    def test_schedules_agree_bitwise(self):
        a, _, _ = pipeline_weights(lenet_factory, 3, 4, "fill_drain", 2)
        b, _, _ = pipeline_weights(lenet_factory, 3, 4, "1f1b", 2)
        assert_bitwise_equal(a, b, "(fill_drain vs 1f1b)")


HEAVY_GRID = [
    (factory, s, m, sched)
    for factory in (alexnet_factory, vgg_factory)
    for s in (2, 4)
    for m in (1, 4, 8)
    for sched in ("fill_drain", "1f1b")
]

#: Tier-1 keeps one AlexNet config; VGG rides only the heavy sweep (its
#: single cheapest config still costs ~a minute of dense conv math).
REDUCED_GRID = [
    (alexnet_factory, 2, 2, "1f1b"),
    (alexnet_factory, 4, 2, "fill_drain"),
]


class TestBigNetIdentity:
    @pytest.mark.parametrize(
        "factory,n_stages,n_microbatches,schedule",
        HEAVY_GRID if HEAVY else REDUCED_GRID,
    )
    def test_matches_single_rank_accumulation(
        self, factory, n_stages, n_microbatches, schedule
    ):
        want = reference_weights(factory, n_microbatches, n_iters=1)
        got, _, _ = pipeline_weights(
            factory, n_stages, n_microbatches, schedule, n_iters=1
        )
        assert_bitwise_equal(
            got, want, f"(S={n_stages}, M={n_microbatches}, {schedule})"
        )


# --------------------------------------------------------------------------- #
# hybrid
# --------------------------------------------------------------------------- #
def hybrid_reference(factory, replicas, n_microbatches, n_iters):
    """Hand-rolled replica averaging: per-replica accumulation, float64
    mean of the diffs, identical updates — the hybrid ground truth."""
    nets = [factory(r) for r in range(replicas)]
    solvers = [
        SGDSolver(net, iter_size=n_microbatches, **SOLVER_KW) for net in nets
    ]
    for _ in range(n_iters):
        for net in nets:
            net.zero_param_diffs()
            for _m in range(n_microbatches):
                net.forward()
                net.backward()
            if n_microbatches > 1:
                for p in net.params:
                    p.diff = p.diff / n_microbatches
        for ps in zip(*(net.params for net in nets)):
            avg = sum(p.diff.astype(np.float64) for p in ps) / replicas
            for p in ps:
                p.diff = avg.astype(p.dtype)
        for solver in solvers:
            solver.apply_update(solver.learning_rate())
            solver.iter += 1
    return [p.data.copy() for p in nets[0].params]


class TestHybrid:
    def test_matches_averaged_reference_bitwise(self):
        want = hybrid_reference(lenet_factory, replicas=2,
                                n_microbatches=2, n_iters=2)
        got, trainer, stats = pipeline_weights(
            lenet_factory, 2, 2, "1f1b", 2, replicas=2
        )
        assert_bitwise_equal(got, want, "(hybrid R=2)")
        # Both replicas hold the same synchronized weights.
        for p0, p1 in zip(trainer.nets[0].params, trainer.nets[1].params):
            assert np.array_equal(p0.data, p1.data)
        assert stats.comm_time_s > 0.0

    def test_pure_pipeline_has_no_group_comm(self):
        trainer = PipelineTrainer(lenet_factory, 2, n_microbatches=2)
        assert trainer.group_comm is None


# --------------------------------------------------------------------------- #
# the transport is load-bearing
# --------------------------------------------------------------------------- #
class TestTransportMutation:
    def test_lossy_recv_corrupts_training(self):
        """Zeroing what crosses the boundary must diverge the weights —
        if it doesn't, the 'transported' tensors were never used."""
        want = reference_weights(lenet_factory, 2, n_iters=1)
        trainer = PipelineTrainer(
            lenet_factory, 2, n_microbatches=2, **SOLVER_KW
        )
        real_recv = trainer.transport.recv

        def lossy_recv(src, dst, *, tag=""):
            return np.zeros_like(real_recv(src, dst, tag=tag))

        trainer.transport.recv = lossy_recv
        trainer.step(1)
        got = [p.data.copy() for p in trainer.nets[0].params]
        assert any(
            not np.array_equal(g, w) for g, w in zip(got, want)
        ), "zeroed transport did not change training: transport is dead code"


# --------------------------------------------------------------------------- #
# bookkeeping
# --------------------------------------------------------------------------- #
class TestStatsAndValidation:
    def test_stats_accounting(self):
        _, trainer, stats = pipeline_weights(lenet_factory, 2, 4, "1f1b", 3)
        assert stats.iterations == 3
        assert len(stats.bubble_fracs) == 3
        assert stats.pipeline_time_s > 0.0
        assert stats.comm_time_s > 0.0  # boundary transfers are priced
        assert all(0.0 <= f < 1.0 for f in stats.bubble_fracs)
        assert trainer.n_nodes == 2

    def test_losses_match_reference_solver(self):
        net = lenet_factory(0)
        solver = SGDSolver(net, iter_size=4, **SOLVER_KW)
        ref = solver.step(2)
        _, _, stats = pipeline_weights(lenet_factory, 2, 4, "1f1b", 2)
        assert stats.losses == pytest.approx(ref.losses)

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineTrainer(lenet_factory, 2, n_microbatches=0)
        with pytest.raises(ValueError):
            PipelineTrainer(lenet_factory, 2, replicas=0)
