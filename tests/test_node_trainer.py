"""Tests for the intra-node 4-CG trainer (Algorithm 1, executed)."""

import numpy as np
import pytest

from repro.frame.layers import DataLayer, InnerProductLayer, ReLULayer, SoftmaxWithLossLayer
from repro.frame.net import Net
from repro.frame.solver import SGDSolver
from repro.parallel.node_trainer import MultiCGTrainer
from repro.utils.rng import seeded_rng

CLASSES, DIM, QUARTER = 3, 6, 4


def make_batches(n_steps, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_steps):
        images = rng.normal(size=(4 * QUARTER, DIM)).astype(np.float32)
        labels = rng.integers(0, CLASSES, size=4 * QUARTER)
        out.append((images, labels))
    return out


class QuarterSource:
    """Hands one CG its fixed quarter of each step's batch."""

    def __init__(self, batches, cg):
        self.batches = batches
        self.cg = cg
        self.i = 0
        self.sample_shape = (DIM,)

    def next_batch(self, batch_size):
        images, labels = self.batches[self.i % len(self.batches)]
        self.i += 1
        lo = self.cg * QUARTER
        return images[lo : lo + batch_size], labels[lo : lo + batch_size]


class FullSource(QuarterSource):
    def next_batch(self, batch_size):
        images, labels = self.batches[self.i % len(self.batches)]
        self.i += 1
        return images, labels


def build_net(source, batch):
    net = Net("node")
    net.add(DataLayer("data", source, batch), bottoms=[], tops=["data", "label"])
    net.add(InnerProductLayer("ip1", 8, rng=seeded_rng(31)), ["data"], ["h"])
    net.add(ReLULayer("r"), ["h"], ["a"])
    net.add(InnerProductLayer("ip2", CLASSES, rng=seeded_rng(32)), ["a"], ["logits"])
    net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
    return net


def test_four_cg_training_equals_full_batch():
    steps = 4
    data = make_batches(steps)
    trainer = MultiCGTrainer(
        net_factory=lambda cg: build_net(QuarterSource(data, cg), QUARTER),
        base_lr=0.05,
        momentum=0.9,
    )
    trainer.step(steps)
    assert trainer.replicas_in_sync(atol=1e-6)

    ref_net = build_net(FullSource(data, 0), 4 * QUARTER)
    ref = SGDSolver(ref_net, base_lr=0.05, momentum=0.9)
    ref.step(steps)
    for rp, tp in zip(ref_net.params, trainer.nets[0].params):
        np.testing.assert_allclose(tp.data, rp.data, rtol=1e-4, atol=1e-6)


def test_simulated_time_accumulates():
    data = make_batches(2)
    trainer = MultiCGTrainer(
        net_factory=lambda cg: build_net(QuarterSource(data, cg), QUARTER)
    )
    stats = trainer.step(2)
    assert stats.iterations == 2
    assert stats.simulated_time_s > 0
    # Node time includes the CG0 local reduce, which is model-size bound.
    single_iter = stats.simulated_time_s / 2
    node = trainer.runner.iteration_time(
        trainer.nets[0].sw_iteration_time(), trainer.packers[0].total_bytes
    )
    assert single_iter >= node.local_reduce_s


def test_replicas_use_four_core_groups():
    data = make_batches(1)
    trainer = MultiCGTrainer(
        net_factory=lambda cg: build_net(QuarterSource(data, cg), QUARTER)
    )
    assert trainer.n_cgs == 4
    assert len(trainer.nets) == 4
