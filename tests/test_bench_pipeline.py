"""Tests for the benchmark result schema, runner, and regression gate."""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro.metrics.benchfmt import (
    BENCH_SCHEMA,
    BenchCase,
    BenchMetric,
    bench_payload,
    config_hash,
    load_bench_json,
    load_result_set,
    validate_bench,
    write_bench_json,
)
from repro.metrics.benchrun import BenchCollector, BenchTimer

_TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
if str(_TOOLS) not in sys.path:
    sys.path.insert(0, str(_TOOLS))
import bench_compare  # noqa: E402


def _payload(suite="demo", **metric_values):
    case = BenchCase(test="test_demo")
    for name, value in metric_values.items():
        case.add(BenchMetric(name=name, value=value, units="s"))
    return bench_payload(suite, [case], cfg_hash=config_hash(["demo"]))


class TestBenchFormat:
    def test_round_trip_validates(self, tmp_path):
        payload = _payload(sim_time=1.5)
        path = write_bench_json(tmp_path / "BENCH_demo.json", payload)
        loaded = load_bench_json(path)
        assert validate_bench(loaded) == []
        assert loaded["schema"] == BENCH_SCHEMA
        assert loaded["results"][0]["metrics"][0]["value"] == 1.5

    def test_metric_direction_validated(self):
        with pytest.raises(ValueError, match="direction"):
            BenchMetric(name="x", value=1.0, units="", direction="sideways")

    def test_duplicate_metric_name_rejected(self):
        case = BenchCase(test="t")
        case.add(BenchMetric(name="x", value=1.0, units=""))
        with pytest.raises(ValueError, match="duplicate"):
            case.add(BenchMetric(name="x", value=2.0, units=""))

    def test_validate_flags_malformed(self):
        assert validate_bench({"schema": "other/1"})
        payload = _payload(sim_time=1.0)
        payload["results"][0]["metrics"][0].pop("value")
        assert validate_bench(payload)

    def test_config_hash_stable_and_sensitive(self):
        assert config_hash(["a", "b"]) == config_hash(["a", "b"])
        assert config_hash(["a", "b"]) != config_hash(["a", "c"])
        assert config_hash(["ab"]) != config_hash(["a", "b"])  # \x00-joined

    def test_load_result_set_file_and_dir(self, tmp_path):
        path = write_bench_json(tmp_path / "BENCH_demo.json", _payload(sim_time=1.0))
        assert set(load_result_set(path)) == {"demo"}
        assert set(load_result_set(tmp_path)) == {"demo"}
        empty = tmp_path / "empty_dir"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            load_result_set(empty)


class TestBenchRunner:
    def test_timer_records_wall_time_once(self):
        case = BenchCase(test="t")
        timer = BenchTimer(case)
        assert timer(lambda: 42) == 42
        assert timer(lambda: 43) == 43  # second call must not re-add wall_time
        walls = [m for m in case.metrics if m.name == "wall_time"]
        assert len(walls) == 1
        assert not walls[0].deterministic

    def test_pedantic_runs_rounds(self):
        calls = []
        case = BenchCase(test="t")
        timer = BenchTimer(case)
        timer.pedantic(lambda x: calls.append(x), args=(1,), rounds=3, iterations=2)
        assert len(calls) == 6

    def test_record_deterministic_metric(self):
        case = BenchCase(test="t")
        timer = BenchTimer(case)
        timer.record("steps", 12, "steps", direction="lower")
        (m,) = [m for m in case.metrics if m.name == "steps"]
        assert m.deterministic and m.value == 12

    def test_collector_writes_one_file_per_suite(self, tmp_path):
        out = tmp_path / "results"
        collector = BenchCollector(out)
        collector.timer("alpha", "test_a").record("x", 1, "")
        collector.timer("beta", "test_b").record("y", 2, "")
        collector.timer("gamma", "test_empty")  # no metrics: skipped
        paths = collector.write(tmp_path)
        assert sorted(p.name for p in paths) == ["BENCH_alpha.json", "BENCH_beta.json"]
        for p in paths:
            assert validate_bench(json.loads(p.read_text())) == []


class TestBenchCompare:
    def test_identical_sets_pass(self):
        base = {"demo": _payload(sim_time=1.0)}
        regs, imps, notes = bench_compare.compare(base, base)
        assert regs == [] and imps == [] and notes == []

    def test_lower_direction_increase_regresses(self):
        base = {"demo": _payload(sim_time=1.0)}
        cand = {"demo": _payload(sim_time=1.2)}
        regs, _, _ = bench_compare.compare(base, cand, rel_tol=0.10)
        assert len(regs) == 1 and "sim_time" in regs[0]

    def test_within_tolerance_passes(self):
        base = {"demo": _payload(sim_time=1.0)}
        cand = {"demo": _payload(sim_time=1.05)}
        regs, imps, _ = bench_compare.compare(base, cand, rel_tol=0.10)
        assert regs == [] and imps == []

    def test_decrease_is_improvement_not_regression(self):
        base = {"demo": _payload(sim_time=1.0)}
        cand = {"demo": _payload(sim_time=0.5)}
        regs, imps, _ = bench_compare.compare(base, cand)
        assert regs == [] and len(imps) == 1

    def test_higher_direction_mirrors(self):
        def payload(v):
            case = BenchCase(test="t")
            case.add(BenchMetric(name="speedup", value=v, units="x", direction="higher"))
            return bench_payload("demo", [case])

        regs, _, _ = bench_compare.compare({"demo": payload(2.0)}, {"demo": payload(1.5)})
        assert len(regs) == 1
        regs, imps, _ = bench_compare.compare({"demo": payload(2.0)}, {"demo": payload(3.0)})
        assert regs == [] and len(imps) == 1

    def test_missing_metric_is_regression_new_is_note(self):
        base = {"demo": _payload(sim_time=1.0)}
        cand = {"demo": _payload(other=1.0)}
        regs, _, notes = bench_compare.compare(base, cand)
        assert any("missing" in r for r in regs)
        assert any("new metric" in n for n in notes)

    def test_nondeterministic_skipped_unless_included(self):
        def payload(v):
            case = BenchCase(test="t")
            case.add(
                BenchMetric(
                    name="wall_time", value=v, units="s", deterministic=False
                )
            )
            return bench_payload("demo", [case])

        base, cand = {"demo": payload(1.0)}, {"demo": payload(9.0)}
        regs, _, _ = bench_compare.compare(base, cand)
        assert regs == []
        regs, _, _ = bench_compare.compare(base, cand, include_time=True)
        assert len(regs) == 1

    def test_per_metric_tolerance_override(self):
        base = {"demo": _payload(sim_time=1.0)}
        cand = {"demo": _payload(sim_time=1.3)}
        regs, _, _ = bench_compare.compare(
            base, cand, per_metric_tol={"sim_time": 0.50}
        )
        assert regs == []


class TestBenchCompareCli:
    def _write(self, tmp_path, name, value):
        out = tmp_path / name
        write_bench_json(out / "BENCH_demo.json", _payload(sim_time=value))
        return str(out)

    def test_exit_0_on_pass(self, tmp_path, capsys):
        base = self._write(tmp_path, "base", 1.0)
        cand = self._write(tmp_path, "cand", 1.0)
        assert bench_compare.main([base, cand]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_exit_1_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path, "base", 1.0)
        cand = self._write(tmp_path, "cand", 2.0)
        assert bench_compare.main([base, cand]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_exit_2_on_missing_input(self, tmp_path, capsys):
        base = self._write(tmp_path, "base", 1.0)
        assert bench_compare.main([base, str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err
