"""Point-to-point transport tests (:mod:`repro.simmpi.p2p`).

The transport follows the package's data/time split: payload delivery is
bitwise-exact and instantaneous (the simulator executes ranks in
dependency order), while the priced transfer windows ride the fabric cost
model. These tests pin both halves — mailbox semantics, clock accounting,
the nonblocking serial-fabric schedule with its hidden/exposed split,
endpoint validation, and the what-if ``p2p`` scale hook.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CollectiveTimeout, CommunicatorError
from repro.simmpi import P2PTransport, p2p_shift
from repro.testing.registry import make_fuzz_comm
from repro.trace.scaling import CostScaling, scaling
from repro.trace.tracer import Tracer, tracing


@pytest.fixture()
def transport():
    return P2PTransport(make_fuzz_comm(4))


class TestBlocking:
    def test_send_recv_is_bit_exact(self, transport):
        rng = np.random.default_rng(11)
        payload = rng.normal(size=(3, 17)).astype(np.float32)
        transport.send(0, 1, payload, tag="act")
        got = transport.recv(0, 1, tag="act")
        assert got.dtype == payload.dtype
        assert np.array_equal(got, payload)

    def test_send_copies_the_payload(self, transport):
        payload = np.ones(8)
        transport.send(0, 1, payload)
        payload[:] = -1.0
        assert np.array_equal(transport.recv(0, 1), np.ones(8))

    def test_mailbox_is_fifo_per_tag(self, transport):
        transport.send(0, 1, np.full(4, 1.0), tag="a")
        transport.send(0, 1, np.full(4, 2.0), tag="a")
        transport.send(0, 1, np.full(4, 9.0), tag="b")
        assert transport.recv(0, 1, tag="a")[0] == 1.0
        assert transport.recv(0, 1, tag="b")[0] == 9.0
        assert transport.recv(0, 1, tag="a")[0] == 2.0

    def test_send_advances_clock_by_priced_transfer(self, transport):
        payload = np.zeros(1024)
        before = transport.comm.clock.now
        res = transport.send(0, 1, payload)
        assert res.time_s == transport.comm.pair_time(0, 1, payload.nbytes)
        assert transport.comm.clock.now == pytest.approx(before + res.time_s)

    def test_unmatched_recv_raises(self, transport):
        with pytest.raises(CommunicatorError, match="no matching send"):
            transport.recv(2, 3, tag="nope")
        transport.send(0, 1, np.zeros(2), tag="t")
        transport.recv(0, 1, tag="t")
        with pytest.raises(CommunicatorError):
            transport.recv(0, 1, tag="t")

    @pytest.mark.parametrize("src,dst", [(-1, 0), (0, 4), (2, 2)])
    def test_endpoint_validation(self, transport, src, dst):
        with pytest.raises(CommunicatorError):
            transport.send(src, dst, np.zeros(2))

    def test_dead_endpoint_times_out(self):
        comm = make_fuzz_comm(4)
        comm.failed_ranks = frozenset({2})
        transport = P2PTransport(comm)
        with pytest.raises(CollectiveTimeout):
            transport.send(0, 2, np.zeros(4))
        with pytest.raises(CollectiveTimeout):
            transport.send(2, 0, np.zeros(4))
        # Transfers avoiding the dead rank still go through.
        transport.send(0, 1, np.zeros(4))


class TestNonblocking:
    def test_data_is_available_immediately(self, transport):
        payload = np.arange(6, dtype=np.float64)
        transport.isend(0, 1, payload, tag="g")
        assert np.array_equal(transport.irecv(0, 1, tag="g"), payload)

    def test_windows_are_serial_on_the_fabric(self, transport):
        a = transport.isend(0, 1, np.zeros(4096), ready_s=0.0)
        b = transport.isend(1, 2, np.zeros(4096), ready_s=0.0)
        c = transport.isend(2, 3, np.zeros(4096), ready_s=b.end_s + 1.0)
        assert a.start_s == 0.0
        assert b.start_s == a.end_s  # queued behind a
        assert c.start_s == c.ready_s  # fabric already free: starts at ready
        assert transport.free_s == c.end_s

    def test_wait_all_splits_hidden_and_exposed(self, transport):
        req = transport.isend(0, 1, np.zeros(65536), ready_s=0.0)
        transport.isend(1, 2, np.zeros(65536), ready_s=0.0)
        done = transport.wait_all(barrier_s=req.end_s)
        assert len(done) == 2 and all(r.done for r in done)
        assert done[0].hidden_before(req.end_s) == pytest.approx(done[0].comm_s)
        # The second window starts at the barrier: fully exposed.
        assert done[1].hidden_before(req.end_s) == 0.0
        assert transport.pending == []

    def test_service_spans_carry_ready_floor_and_chain(self, transport):
        tracer = Tracer()
        with tracing(tracer):
            transport.isend(0, 1, np.zeros(256), ready_s=0.5)
            transport.isend(1, 2, np.zeros(256), ready_s=0.0)
            transport.wait_all()
        svc = [s for s in tracer.spans
               if s.cat == "p2p_transfer" and s.track == "p2p/fabric"]
        assert len(svc) == 2
        assert all(s.start_s >= s.args["ready_s"] for s in svc)


class TestShift:
    @pytest.mark.parametrize("p", [2, 5, 8])
    def test_rotates_buffers_bitwise(self, p):
        rng = np.random.default_rng([0xB0B, p])
        bufs = [rng.normal(size=37) for _ in range(p)]
        expect = [bufs[(r - 1) % p].copy() for r in range(p)]
        p2p_shift(make_fuzz_comm(p), bufs)
        for r in range(p):
            assert np.array_equal(bufs[r], expect[r])

    def test_singleton_is_a_no_op(self):
        bufs = [np.arange(5.0)]
        result = p2p_shift(make_fuzz_comm(1), bufs)
        assert result.time_s == 0.0
        assert np.array_equal(bufs[0], np.arange(5.0))


class TestScaling:
    def test_p2p_factor_scales_priced_time_not_data(self):
        payload = np.ones(2048)
        base = P2PTransport(make_fuzz_comm(4))
        t0 = base.send(0, 1, payload).time_s
        scaled = P2PTransport(make_fuzz_comm(4))
        with scaling(CostScaling({"p2p": 3.0})):
            res = scaled.send(0, 1, payload)
        assert res.time_s == pytest.approx(3.0 * t0)
        assert np.array_equal(scaled.recv(0, 1), payload)
