"""Tests for the basic MPI collectives (broadcast/reduce/scatter/gather/
allgather/reduce-scatter) and their composition into allreduce."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CommunicatorError
from repro.simmpi import SimComm, block_placement, rhd_allreduce
from repro.simmpi.collectives.basic import (
    allgather,
    broadcast,
    gather,
    reduce,
    reduce_scatter,
    scatter,
)
from repro.simmpi.collectives.reduce_ops import block_offsets
from repro.topology import LinearCostModel, TaihuLightFabric

MODEL = LinearCostModel(alpha=1e-6, beta1=1e-10, beta2=4e-10, gamma=3e-11)


def make_comm(p, q=4):
    fab = TaihuLightFabric(n_nodes=max(p, q), nodes_per_supernode=q)
    return SimComm(fab, block_placement(p, 1), cost=MODEL)


def bufs(p, n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=n) for _ in range(p)]


class TestBroadcast:
    @settings(max_examples=15, deadline=None)
    @given(p=st.integers(min_value=1, max_value=13), root=st.integers(min_value=0, max_value=12))
    def test_everyone_gets_root_data(self, p, root):
        root = root % p
        data = bufs(p, 17, seed=p)
        expected = data[root].copy()
        broadcast(make_comm(p), data, root=root)
        for b in data:
            np.testing.assert_array_equal(b, expected)

    def test_log_depth(self):
        comm = make_comm(16)
        res = broadcast(comm, bufs(16, 8), root=0)
        assert res.alpha_count == 4

    def test_bad_root(self):
        with pytest.raises(CommunicatorError):
            broadcast(make_comm(4), bufs(4, 4), root=4)


class TestReduce:
    @settings(max_examples=15, deadline=None)
    @given(p=st.integers(min_value=1, max_value=11), root=st.integers(min_value=0, max_value=10))
    def test_root_holds_sum(self, p, root):
        root = root % p
        data = bufs(p, 9, seed=p + 50)
        expected = np.sum(data, axis=0)
        others_before = [d.copy() for d in data]
        reduce(make_comm(p), data, root=root)
        np.testing.assert_allclose(data[root], expected, rtol=1e-12)
        for r, (now, before) in enumerate(zip(data, others_before)):
            if r != root:
                np.testing.assert_array_equal(now, before)

    def test_average(self):
        p = 6
        data = bufs(p, 5, seed=3)
        expected = np.mean(data, axis=0)
        reduce(make_comm(p), data, root=2, average=True)
        np.testing.assert_allclose(data[2], expected, rtol=1e-12)


class TestScatterGather:
    def test_scatter_round_trips_with_gather(self):
        p, n = 4, 23  # uneven chunks
        comm = make_comm(p)
        rng = np.random.default_rng(1)
        sendbuf = rng.normal(size=n)
        off = block_offsets(n, p)
        recv = [np.zeros(off[i + 1] - off[i]) for i in range(p)]
        scatter(comm, sendbuf, recv, root=0)
        for i in range(p):
            np.testing.assert_array_equal(recv[i], sendbuf[off[i] : off[i + 1]])
        out = np.zeros(n)
        gather(comm, recv, out, root=0)
        np.testing.assert_array_equal(out, sendbuf)

    def test_scatter_size_mismatch(self):
        comm = make_comm(2)
        with pytest.raises(CommunicatorError):
            scatter(comm, np.zeros(10), [np.zeros(3), np.zeros(3)])

    def test_gather_size_mismatch(self):
        comm = make_comm(2)
        with pytest.raises(CommunicatorError):
            gather(comm, [np.zeros(3), np.zeros(3)], np.zeros(5))


class TestAllgather:
    @pytest.mark.parametrize("p", [2, 4, 8, 3, 6])  # powers of two + ring fallback
    def test_concatenation_everywhere(self, p):
        size = 7
        rng = np.random.default_rng(p)
        chunks = [rng.normal(size=size) for _ in range(p)]
        expected = np.concatenate(chunks)
        buffers = [np.zeros(size * p) for _ in range(p)]
        allgather(make_comm(p), buffers, chunks)
        for b in buffers:
            np.testing.assert_allclose(b, expected, rtol=1e-12)

    def test_unequal_chunks_rejected(self):
        comm = make_comm(2)
        with pytest.raises(CommunicatorError):
            allgather(comm, [np.zeros(5), np.zeros(5)], [np.zeros(2), np.zeros(3)])


class TestReduceScatter:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_each_rank_gets_its_reduced_block(self, p):
        n = p * 6 + 3  # uneven blocks
        data = bufs(p, n, seed=p + 9)
        expected = np.sum(data, axis=0)
        off = block_offsets(n, p)
        outputs = [np.zeros(off[r + 1] - off[r]) for r in range(p)]
        reduce_scatter(make_comm(p), data, outputs)
        for r in range(p):
            np.testing.assert_allclose(outputs[r], expected[off[r] : off[r + 1]], rtol=1e-12)

    def test_non_power_of_two_rejected(self):
        p = 3
        with pytest.raises(CommunicatorError):
            reduce_scatter(make_comm(p), bufs(p, 6), [np.zeros(2)] * 3)


class TestComposition:
    def test_reduce_scatter_plus_allgather_equals_allreduce(self):
        """Rabenseifner's identity, executed: the fused rhd_allreduce must
        match the composition of its two phases — in result AND in cost."""
        p, n = 8, 64
        data = bufs(p, n, seed=42)
        fused = [d.copy() for d in data]
        comm_fused = make_comm(p)
        res_fused = rhd_allreduce(comm_fused, fused)

        comm_comp = make_comm(p)
        off = block_offsets(n, p)
        outputs = [np.zeros(off[r + 1] - off[r]) for r in range(p)]
        rs = reduce_scatter(comm_comp, data, outputs)
        buffers = [np.zeros(n) for _ in range(p)]
        ag = allgather(comm_comp, buffers, outputs)
        for fb, cb in zip(fused, buffers):
            np.testing.assert_allclose(fb, cb, rtol=1e-12)
        assert res_fused.time_s == pytest.approx(rs.time_s + ag.time_s, rel=1e-9)
