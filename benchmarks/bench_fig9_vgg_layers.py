"""Benchmark: regenerate Fig. 9 (VGG-16 per-layer GPU vs SW26010)."""

from conftest import run_once

from repro.harness import fig9_vgg_layers


def test_fig9_vgg_layers(benchmark):
    rows = run_once(benchmark, fig9_vgg_layers.generate)
    assert any(r.name == "conv1_1" for r in rows)
    print("\n" + fig9_vgg_layers.render(rows))
