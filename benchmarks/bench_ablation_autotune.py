"""Ablation benchmark: plan autotuning vs fixed explicit plans."""

from conftest import run_once

from repro.harness import ablations


def test_ablation_autotune(benchmark):
    result = run_once(benchmark, ablations.autotune_ablation)
    assert result.gain > 1.0
    print("\n" + ablations.render([result]))
