"""Ablation benchmark: topology-aware renumbering and reduction engine."""

from repro.harness import ablations


def test_ablation_allreduce_placement(benchmark):
    result = benchmark(ablations.allreduce_placement_ablation)
    assert result.gain > 1.5
    print("\n" + ablations.render([result]))


def test_ablation_reduce_engine(benchmark):
    result = benchmark(ablations.reduce_engine_ablation)
    assert result.gain > 1.0
    print("\n" + ablations.render([result]))
