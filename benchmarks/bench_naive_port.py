"""Benchmark: regenerate the Sec. III naive-port motivation comparison."""

from repro.harness import naive_port


def test_naive_port_motivation(benchmark):
    rows = benchmark(naive_port.generate)
    assert all(r.swcaffe_s < r.naive_mpe_s for r in rows)
    benchmark.record("total_swcaffe_sim_time", sum(r.swcaffe_s for r in rows), "s")
    benchmark.record(
        "min_speedup_vs_mpe",
        min(r.naive_mpe_s / r.swcaffe_s for r in rows),
        "x",
        direction="higher",
    )
    print("\n" + naive_port.render(rows))
