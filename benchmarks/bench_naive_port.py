"""Benchmark: regenerate the Sec. III naive-port motivation comparison."""

from repro.harness import naive_port


def test_naive_port_motivation(benchmark):
    rows = benchmark(naive_port.generate)
    assert all(r.swcaffe_s < r.naive_mpe_s for r in rows)
    print("\n" + naive_port.render(rows))
