"""Benchmark: regenerate Table II (VGG-16 conv plan comparison)."""

from repro.harness import table2_vgg_conv


def test_table2_vgg_conv(benchmark):
    rows = benchmark(table2_vgg_conv.generate)
    assert len(rows) == 13
    winners = {r.name: r.forward.winner for r in rows}
    assert winners["1_2"] == "implicit" and winners["3_1"] == "explicit"
    print("\n" + table2_vgg_conv.render(rows))
