"""Benchmark: regenerate Table II (VGG-16 conv plan comparison)."""

from repro.harness import table2_vgg_conv


def test_table2_vgg_conv(benchmark):
    rows = benchmark(table2_vgg_conv.generate)
    assert len(rows) == 13
    winners = {r.name: r.forward.winner for r in rows}
    assert winners["1_2"] == "implicit" and winners["3_1"] == "explicit"
    benchmark.record(
        "total_forward_best", sum(r.forward.best_s for r in rows), "s"
    )
    benchmark.record(
        "implicit_forward_wins",
        sum(1 for r in rows if r.forward.winner == "implicit"),
        "layers",
        direction="higher",
    )
    print("\n" + table2_vgg_conv.render(rows))
