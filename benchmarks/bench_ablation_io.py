"""Ablation benchmark: 32x256MB striping vs single-split I/O."""

from repro.harness import ablations


def test_ablation_io_striping(benchmark):
    result = benchmark(ablations.io_striping_ablation)
    assert result.gain > 10
    print("\n" + ablations.render([result]))
