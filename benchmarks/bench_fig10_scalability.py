"""Benchmark: regenerate Fig. 10 (weak-scaling speedups to 1024 nodes)."""

from conftest import run_once

from repro.harness import fig10_scalability


def test_fig10_scalability(benchmark):
    points = run_once(benchmark, fig10_scalability.generate)
    at_1024 = {p.label: p.speedup for p in points if p.n_nodes == 1024}
    assert at_1024["ResNet50, B=32"] > at_1024["AlexNet, B=64"]
    benchmark.record(
        "resnet50_speedup_1024", at_1024["ResNet50, B=32"], "x", direction="higher"
    )
    benchmark.record(
        "alexnet_speedup_1024", at_1024["AlexNet, B=64"], "x", direction="higher"
    )
    print("\n" + fig10_scalability.render(points))
