"""Benchmark: regenerate Fig. 6 (Sunway vs Infiniband P2P curves)."""

from repro.harness import fig6_network


def test_fig6_network_curves(benchmark):
    curves = benchmark(fig6_network.generate)
    assert set(curves) == {"bandwidth", "latency"}
    print("\n" + fig6_network.render(curves))
