"""Serving latency benchmark: dynamic batching vs batch=1 at a fixed SLO.

The committed baseline pins the harness's operating point (LeNet at
40 req/s, 2.5x the batch=1 service rate): the dynamic batcher's p99,
goodput and SLO attainment, and the batch=1 server's collapse. All values
are simulated seconds — deterministic, bit-stable across machines — so any
drift is a real change in the engine, the batcher, or the kernel cost
models (``tools/bench_compare.py`` flags it).

The in-test assertions restate the tentpole acceptance criterion: dynamic
batching must beat batch=1 on throughput *and* goodput at no worse SLO
attainment.
"""

from repro.harness.serving_latency import SLO_S, generate


def test_serving_latency(benchmark):
    comparison = benchmark(generate)
    b1, dy = comparison.batch1, comparison.dynamic

    assert dy.throughput_rps > b1.throughput_rps
    assert dy.goodput_rps > b1.goodput_rps
    assert dy.slo_attainment >= b1.slo_attainment
    assert dy.latency_percentile(99) <= SLO_S

    benchmark.record("dynamic_p99_s", dy.latency_percentile(99), "s")
    benchmark.record("dynamic_goodput_rps", dy.goodput_rps, "req/s",
                     direction="higher")
    benchmark.record("dynamic_slo_attainment", dy.slo_attainment, "",
                     direction="higher")
    benchmark.record("dynamic_mean_batch", dy.mean_batch_size, "req",
                     direction="higher")
    benchmark.record("batch1_p99_s", b1.latency_percentile(99), "s")
    benchmark.record("batch1_goodput_rps", b1.goodput_rps, "req/s",
                     direction="higher")
    benchmark.record("batch1_shed", b1.n_shed, "req")
    benchmark.record(
        "goodput_speedup", dy.goodput_rps / b1.goodput_rps, "x",
        direction="higher",
    )
