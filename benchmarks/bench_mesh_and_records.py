"""Microbenchmarks: mesh-bus simulator, record I/O, prototxt parsing."""

import numpy as np

from repro.frame.prototxt import parse_prototxt
from repro.hw.mesh_sim import MeshSimulator, gemm_inner_schedule
from repro.io.records import FileBackedSource, write_synthetic_records


def test_mesh_gemm_schedule(benchmark):
    ops = gemm_inner_schedule(4096, 4096, 1e5)

    trace = benchmark(MeshSimulator().run, ops)
    assert trace.finish_s > 0
    assert len(trace.bus_busy_s) == 16


def test_record_file_random_reads(benchmark, tmp_path):
    path = str(tmp_path / "bench.swrec")
    write_synthetic_records(path, 256, num_classes=10, sample_shape=(3, 16, 16))
    src = FileBackedSource(path, seed=0)

    images, labels = benchmark(src.next_batch, 64)
    assert images.shape == (64, 3, 16, 16)


def test_prototxt_parse(benchmark):
    text = "\n".join(
        f'layer {{ name: "l{i}" type: "ReLU" bottom: "b{i}" top: "t{i}" }}'
        for i in range(100)
    )
    msg = benchmark(parse_prototxt, text)
    assert len(msg["layer"]) == 100
