"""Critical-path profiler overhead: disabled tracing must cost exactly nothing.

The committed baseline pins ``overhead_sim_s`` at ``0.0``: the simulated
time of a training run is identical with and without a tracer installed —
instrumentation reads the clock, it never advances it (the tracing analogue
of the fault plane's zero-overhead contract). The second case records the
deterministic size and identity-schedule end time of the dependency graph
built from a fig10-sized multi-rank trace, so graph-construction changes
(dropped edges, altered chaining) show up in the bench diff, and its wall
time tracks the build cost itself.
"""

from repro.frame.model_zoo import lenet
from repro.frame.solver import SGDSolver
from repro.trace.critpath import build_graph, schedule
from repro.trace.session import trace_training_step
from repro.trace.tracer import tracing

ITERS = 2


def test_tracing_disabled_overhead_is_zero(benchmark):
    def run():
        off = SGDSolver(lenet.build(batch_size=16), base_lr=0.005, momentum=0.9)
        s_off = off.step(ITERS)
        with tracing():
            on = SGDSolver(lenet.build(batch_size=16), base_lr=0.005, momentum=0.9)
            s_on = on.step(ITERS)
        return s_off, s_on

    s_off, s_on = benchmark(run)
    overhead = abs(s_on.simulated_time_s - s_off.simulated_time_s)
    assert overhead == 0.0
    benchmark.record("overhead_sim_s", overhead, "s")


def test_graph_build_on_fig10_sized_trace(benchmark):
    def run():
        # One iteration: the serial-fabric layout where the identity
        # schedule is *bitwise* exact (multi-iteration folds regroup the
        # inter-iteration offsets and agree only to ~1 ulp).
        net = lenet.build(batch_size=16)
        tracer, _ = trace_training_step(net, ranks=16, iterations=1)
        graph = build_graph(tracer)
        return tracer, graph, schedule(graph)

    tracer, graph, sched = benchmark(run)
    # The identity schedule reproduces the recorded end time bitwise.
    assert sched.end_to_end_s == tracer.end_time()
    benchmark.record("trace_spans", float(len(tracer.spans)), "spans")
    benchmark.record("graph_nodes", float(len(graph.nodes)), "nodes")
    benchmark.record("graph_edges", float(len(graph.edges)), "edges")
    benchmark.record("end_to_end_sim_s", sched.end_to_end_s, "s")
