"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures; heavyweight
harnesses (whole-network builds) run as single-round pedantic benchmarks so
`pytest benchmarks/ --benchmark-only` finishes in minutes, not hours.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one round/iteration and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
