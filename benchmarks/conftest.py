"""Shared benchmark configuration: the ``repro-bench`` runner.

Every benchmark regenerates one of the paper's tables/figures. The
``benchmark`` fixture defined here (overriding pytest-benchmark's, which is
not required at run time) is a :class:`repro.metrics.benchrun.BenchTimer`:
it times the call, and tests additionally :meth:`~BenchTimer.record`
*deterministic* metrics — simulated seconds, modeled bandwidths, speedups —
which are bit-stable across machines.

At session end every result lands in one ``BENCH_<suite>.json`` per module
(schema ``repro-bench/1``, see ``docs/benchmarks.md``) under ``--bench-out``
(default ``benchmarks/results/``), diffable against a committed baseline
with ``tools/bench_compare.py``.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.metrics.benchrun import BenchCollector  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--bench-out",
        default=str(_REPO_ROOT / "benchmarks" / "results"),
        help="directory for BENCH_<suite>.json result files",
    )


def pytest_configure(config):
    config._repro_bench = BenchCollector(config.getoption("--bench-out"))


@pytest.fixture
def benchmark(request):
    """One test's timer; results accumulate into the session collector."""
    suite = request.module.__name__.removeprefix("bench_")
    return request.config._repro_bench.timer(suite, request.node.name)


@pytest.hookimpl(trylast=True)
def pytest_sessionfinish(session, exitstatus):
    collector = getattr(session.config, "_repro_bench", None)
    if collector is None or not collector.n_cases:
        return
    paths = collector.write(_REPO_ROOT)
    tr = session.config.pluginmanager.get_plugin("terminalreporter")
    if tr is not None and paths:
        tr.write_line(
            f"repro-bench: wrote {len(paths)} suite file(s) to "
            f"{paths[0].parent} ({collector.n_cases} case(s))"
        )


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one round/iteration and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
