"""Benchmark: regenerate Table I (processor comparison)."""

from repro.harness import table1_specs


def test_table1_specs(benchmark):
    rows = benchmark(table1_specs.generate)
    assert len(rows) == 3
    print("\n" + table1_specs.render(rows))
