"""Benchmark: regenerate Table I (processor comparison)."""

from repro.harness import table1_specs


def test_table1_specs(benchmark):
    rows = benchmark(table1_specs.generate)
    assert len(rows) == 3
    sw = next(r for r in rows if "SW26010" in str(r["name"]))
    benchmark.record("sw_bandwidth", sw["bandwidth_gbs"], "GB/s", direction="higher")
    benchmark.record("sw_double_perf", sw["double_tflops"], "TFlops", direction="higher")
    benchmark.record("sw_flop_per_byte", sw["flop_per_byte"], "F/B", direction="higher")
    print("\n" + table1_specs.render(rows))
