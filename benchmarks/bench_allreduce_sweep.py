"""Benchmark: the allreduce algorithm sweep (executed collectives)."""

from conftest import run_once

from repro.harness import allreduce_sweep


def test_allreduce_sweep(benchmark):
    points = run_once(benchmark, allreduce_sweep.generate, (1024, 1 << 18, 1 << 22))
    at_large = {p.algorithm: p.time_s for p in points if p.nbytes == 1 << 22}
    assert at_large["rhd (round-robin)"] < at_large["rhd (block)"]
    print("\n" + allreduce_sweep.render(points))
