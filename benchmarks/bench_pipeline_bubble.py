"""Pipeline-schedule benchmark: bubble accounting and the hybrid-vs-DP bet.

Two deterministic contracts gate here:

* the walked schedules reproduce the analytic GPipe bubble fraction
  ``(S - 1) / (M + S - 1)`` exactly on uniform stages — any drift in the
  event walk shows up as a bubble regression;
* the subsystem's reason to exist: hybrid VGG-16 at 16 nodes (4 stages x
  4 replicas, per-stage-group bucketed sync overlapped with the drain)
  must expose a *lower* communication fraction than the PR-5 bucketed
  data-parallel baseline at the same node count, and must beat the
  paper's fused data-parallel iteration outright.

All recorded metrics are simulated/derived values — bit-stable across
machines — so ``tools/bench_compare.py`` gates them at the default
tolerance.
"""

import pytest

from repro.frame.model_zoo import vgg
from repro.parallel.ssgd import SSGDIterationModel
from repro.perf.layer_cost import net_iteration_time
from repro.pipeline import PipelineIterationModel, plan_stages, simulate_pipeline

S, M = 4, 16
NODES = 16
BUCKET_MB = 32.0
SUB_BATCH = 8


def test_bubble_matches_formula(benchmark):
    def run():
        fd = simulate_pipeline([1.0] * S, [2.0] * S, n_microbatches=M,
                               schedule="fill_drain")
        ob = simulate_pipeline([1.0] * S, [2.0] * S, n_microbatches=M,
                               schedule="1f1b")
        return fd, ob

    fd, ob = benchmark(run)
    expected = (S - 1) / (M + S - 1)
    assert fd.bubble_frac == pytest.approx(expected, rel=0, abs=1e-12)
    assert ob.bubble_frac == pytest.approx(expected, rel=0, abs=1e-12)
    assert ob.makespan_s == fd.makespan_s
    benchmark.record("fill_drain_bubble", fd.bubble_frac, "frac")
    benchmark.record("one_f_one_b_bubble", ob.bubble_frac, "frac")
    benchmark.record("uniform_makespan_s", fd.makespan_s, "s")


def test_vgg_hybrid_beats_bucketed_dp(benchmark):
    def run():
        net = vgg.build_vgg16(batch_size=SUB_BATCH)
        compute_s = net_iteration_time(net, "sw26010")
        plan = plan_stages(net, S)
        hybrid = PipelineIterationModel(
            plan,
            n_microbatches=M,
            replicas=NODES // S,
            bucket_mb=BUCKET_MB,
        ).breakdown()
        dp_fused = SSGDIterationModel(
            compute_s=compute_s, model_bytes=net.param_bytes()
        ).breakdown(NODES)
        dp_bucketed = SSGDIterationModel(
            compute_s=compute_s,
            model_bytes=net.param_bytes(),
            bucket_mb=BUCKET_MB,
        ).breakdown(NODES)
        return plan, hybrid, dp_fused, dp_bucketed

    plan, hybrid, dp_fused, dp_bucketed = benchmark(run)
    # The committed bet: hybrid exposes less comm than bucketed DP and
    # beats fused DP end-to-end at 16 nodes.
    assert hybrid.comm_fraction < dp_bucketed.comm_fraction
    assert hybrid.total_s < dp_fused.total_s
    benchmark.record("hybrid_comm_frac", hybrid.comm_fraction, "frac")
    benchmark.record("dp_bucketed_comm_frac", dp_bucketed.comm_fraction,
                     "frac", direction="higher")
    benchmark.record("dp_fused_iteration_s", dp_fused.total_s, "s",
                     direction="higher")
    benchmark.record("hybrid_iteration_s", hybrid.total_s, "s")
    benchmark.record("hybrid_bubble_frac", hybrid.bubble_frac, "frac")
    benchmark.record("stage_imbalance", plan.stage_imbalance, "frac")
