"""Benchmarks: the extension harnesses (memory budget, straggler study)."""

from conftest import run_once

from repro.harness import memory_budget, straggler_study


def test_memory_budget(benchmark):
    rows = run_once(benchmark, memory_budget.generate)
    assert all(r.footprint.fits() for r in rows)  # paper batches all fit
    print("\n" + memory_budget.render(rows))


def test_straggler_study(benchmark):
    points = benchmark(straggler_study.generate)
    assert all(p.mean_inflation >= 1.0 for p in points)
    print("\n" + straggler_study.render(points))
