"""Microbenchmarks: the executed collective engine on real buffers.

These time the actual Python data movement of the simulated collectives
(the machinery every experiment relies on), not the modeled SW26010 time.
"""

import numpy as np
import pytest

from repro.simmpi import (
    SimComm,
    binomial_allreduce,
    block_placement,
    rhd_allreduce,
    ring_allreduce,
    round_robin_placement,
)
from repro.topology import LinearCostModel, TaihuLightFabric

MODEL = LinearCostModel(alpha=1e-6, beta1=1e-10, beta2=4e-10, gamma=3e-10)
P, Q = 16, 4
N_ELEMS = 1 << 16


def setup_buffers():
    rng = np.random.default_rng(0)
    return [rng.normal(size=N_ELEMS) for _ in range(P)]


@pytest.mark.parametrize(
    "algo,placement_fn",
    [
        (ring_allreduce, block_placement),
        (binomial_allreduce, block_placement),
        (rhd_allreduce, block_placement),
        (rhd_allreduce, round_robin_placement),
    ],
    ids=["ring", "binomial", "rhd-block", "rhd-round-robin"],
)
def test_allreduce_engine(benchmark, algo, placement_fn):
    fabric = TaihuLightFabric(n_nodes=P, nodes_per_supernode=Q)

    def run():
        bufs = setup_buffers()
        comm = SimComm(fabric, placement_fn(P, Q), cost=MODEL)
        res = algo(comm, bufs)
        return bufs, res

    bufs, res = benchmark(run)
    expected = np.sum(setup_buffers(), axis=0)
    np.testing.assert_allclose(bufs[0], expected, rtol=1e-10)
    benchmark.record("sim_time", res.time_s, "s")
    benchmark.record("steps", res.steps, "steps")
