"""Benchmark: regenerate Fig. 8 (AlexNet per-layer GPU vs SW26010)."""

from conftest import run_once

from repro.harness import fig8_alexnet_layers


def test_fig8_alexnet_layers(benchmark):
    rows = run_once(benchmark, fig8_alexnet_layers.generate)
    assert any(r.name == "conv1" for r in rows)
    print("\n" + fig8_alexnet_layers.render(rows))
