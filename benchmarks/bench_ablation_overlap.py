"""Ablation benchmark: overlap-aware bucketed allreduce vs fused.

Two cases: the single-point ablation at the Fig. 10 operating point, and
the full Fig. 11 comm-ratio sweep comparing the fused and bucketed models
at every paper node count. All recorded metrics are simulated/derived and
bit-stable, so they gate in ``tools/bench_compare.py``.
"""

from conftest import run_once

from repro.harness import ablations, fig10_scalability


def test_ablation_overlap(benchmark):
    result = run_once(benchmark, ablations.overlap_ablation)
    assert result.gain > 1.0
    benchmark.record("exposed_fused_s", result.baseline_value, "s")
    benchmark.record("exposed_bucketed_s", result.improved_value, "s")
    benchmark.record("gain", result.gain, "x", direction="higher")
    print("\n" + ablations.render([result]))


def test_overlap_comm_ratio_sweep(benchmark):
    bucketed = run_once(benchmark, fig10_scalability.generate, bucket_mb=96.0)
    fused = fig10_scalability.generate()

    f = {(p.label, p.n_nodes): p for p in fused}
    b = {(p.label, p.n_nodes): p for p in bucketed}
    # Bucketing must strictly lower the exposed comm share at 16+ nodes.
    for (label, n), fp in f.items():
        if n >= 16:
            assert b[(label, n)].comm_fraction < fp.comm_fraction, (label, n)

    key = ("AlexNet, B=128", 1024)
    benchmark.record("comm_fraction_fused_1024", f[key].comm_fraction, "")
    benchmark.record("comm_fraction_bucketed_1024", b[key].comm_fraction, "")
    benchmark.record(
        "hidden_s_1024", b[key].overlap_hidden_s, "s", direction="higher"
    )
    key16 = ("AlexNet, B=128", 16)
    benchmark.record("comm_fraction_fused_16", f[key16].comm_fraction, "")
    benchmark.record("comm_fraction_bucketed_16", b[key16].comm_fraction, "")
