"""Microbenchmarks: functional kernel implementations.

Times the NumPy execution paths the framework actually trains with: the
literal register-communication GEMM schedule, im2col/col2im, and batched
convolution forward/backward.
"""

import numpy as np

from repro.frame.conv_ops import conv_backward, conv_forward
from repro.kernels import gemm_register_schedule, im2col, col2im

RNG = np.random.default_rng(0)


def test_gemm_register_schedule(benchmark):
    a = RNG.normal(size=(128, 128))
    b = RNG.normal(size=(128, 128))
    c = benchmark(gemm_register_schedule, a, b)
    np.testing.assert_allclose(c, a @ b, rtol=1e-10)


def test_im2col(benchmark):
    x = RNG.normal(size=(64, 56, 56))
    cols = benchmark(im2col, x, 3, 1, 1)
    assert cols.shape == (64 * 9, 56 * 56)


def test_col2im(benchmark):
    cols = RNG.normal(size=(64 * 9, 56 * 56))
    x = benchmark(col2im, cols, (64, 56, 56), 3, 1, 1)
    assert x.shape == (64, 56, 56)


def test_conv_forward_batched(benchmark):
    x = RNG.normal(size=(8, 32, 28, 28)).astype(np.float32)
    w = RNG.normal(size=(64, 32, 3, 3)).astype(np.float32)
    b = RNG.normal(size=64).astype(np.float32)
    y = benchmark(conv_forward, x, w, b, 1, 1)
    assert y.shape == (8, 64, 28, 28)


def test_conv_backward_batched(benchmark):
    x = RNG.normal(size=(8, 32, 28, 28)).astype(np.float32)
    w = RNG.normal(size=(64, 32, 3, 3)).astype(np.float32)
    dy = RNG.normal(size=(8, 64, 28, 28)).astype(np.float32)
    dx, dw, db = benchmark(conv_backward, x, w, dy, 1, 1)
    assert dx.shape == x.shape and dw.shape == w.shape
