"""Ablation benchmark: gradient packing vs per-layer allreduce."""

from conftest import run_once

from repro.harness import ablations


def test_ablation_gradient_packing(benchmark):
    result = run_once(benchmark, ablations.packing_ablation)
    assert result.gain > 2.0
    print("\n" + ablations.render([result]))
