"""Benchmark: the inference-throughput extension table."""

from conftest import run_once

from repro.harness import inference_throughput


def test_inference_throughput(benchmark):
    rows = run_once(benchmark, inference_throughput.generate)
    assert len(rows) == 5
    assert all(r.sw_img_s > 0 for r in rows)
    print("\n" + inference_throughput.render(rows))
