"""Benchmark: regenerate Fig. 7 (8-node allreduce example).

The timed body executes both allreduce schemes over real 1 MB buffers,
so this also benchmarks the collective engine itself.
"""

from repro.harness import fig7_allreduce


def test_fig7_allreduce_example(benchmark):
    result = benchmark(fig7_allreduce.generate)
    assert result.improvement > 1.0
    assert result.reduction_exact
    benchmark.record("original_sim_time", result.original_simulated_s, "s")
    benchmark.record("improved_sim_time", result.improved_simulated_s, "s")
    benchmark.record("improvement", result.improvement, "x", direction="higher")
    print("\n" + fig7_allreduce.render(result))
