"""Benchmark: regenerate Table III (throughput on CPU / K40m / SW26010)."""

from conftest import run_once

from repro.harness import table3_throughput


def test_table3_throughput(benchmark):
    rows = run_once(benchmark, table3_throughput.generate)
    by_name = {r.network: r for r in rows}
    assert by_name["AlexNet"].sw_over_gpu > 1.0
    assert by_name["VGG-16"].sw_over_gpu < 1.0
    for row in rows:
        key = row.network.lower().replace("-", "").replace(" ", "_")
        benchmark.record(f"{key}_sw_img_s", row.sw_img_s, "img/s", direction="higher")
    print("\n" + table3_throughput.render(rows))
