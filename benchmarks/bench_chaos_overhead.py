"""Fault-plane overhead benchmark: disabled must cost exactly nothing.

The committed baseline pins ``overhead_sim_s`` and ``weights_delta`` at
``0.0``: a run with no injector installed and a run under an all-zero
fault plan must agree on every simulated clock charge and every weight
bit. Any nonzero candidate value is a regression of the zero-overhead
contract (``tools/bench_compare.py`` flags it).

A second case records the deterministic simulated cost of an actual
crash-recovery chaos run, so recovery-path time changes show up in the
bench diff too.
"""

import numpy as np

from repro.faults import seed_string, zero_plan, injecting
from repro.faults.session import run_chaos
from repro.frame.layers import DataLayer, InnerProductLayer, SoftmaxWithLossLayer
from repro.frame.net import Net
from repro.parallel.trainer import DistributedTrainer
from repro.utils.rng import seeded_rng

RANKS, ITERS = 4, 6


class SeekableShardSource:
    def __init__(self, batches):
        self.batches = list(batches)
        self.i = 0
        self.sample_shape = batches[0][0].shape[1:]

    def next_batch(self, batch_size):
        images, labels = self.batches[self.i % len(self.batches)]
        self.i += 1
        return images, labels

    def seek(self, n_batches, batch_size):
        self.i = n_batches


def make_factory(n_workers=RANKS, per_worker=3, dim=5, classes=3, steps=8):
    rng = np.random.default_rng(0)
    data = [
        (
            rng.normal(size=(n_workers * per_worker, dim)).astype(np.float32),
            rng.integers(0, classes, size=n_workers * per_worker),
        )
        for _ in range(steps)
    ]

    def factory(rank):
        shard = SeekableShardSource(
            [
                (
                    img[rank * per_worker : (rank + 1) * per_worker],
                    lab[rank * per_worker : (rank + 1) * per_worker],
                )
                for img, lab in data
            ]
        )
        net = Net("mlp")
        net.add(DataLayer("data", shard, per_worker), bottoms=[], tops=["data", "label"])
        net.add(InnerProductLayer("ip", classes, rng=seeded_rng(7)), ["data"], ["logits"])
        net.add(SoftmaxWithLossLayer("loss"), ["logits", "label"], ["loss"])
        return net

    return factory


def test_disabled_overhead_is_zero(benchmark):
    def run():
        off = DistributedTrainer(make_factory(), RANKS, algorithm="rhd")
        s_off = off.step(ITERS)
        zero = DistributedTrainer(make_factory(), RANKS, algorithm="rhd")
        with injecting(zero_plan(RANKS, ITERS)):
            s_zero = zero.step(ITERS)
        return off, s_off, zero, s_zero

    off, s_off, zero, s_zero = benchmark(run)
    overhead = abs(s_zero.comm_time_s - s_off.comm_time_s)
    delta = float(
        np.max(np.abs(off.packers[0].pack_data() - zero.packers[0].pack_data()))
    )
    assert overhead == 0.0 and delta == 0.0
    benchmark.record("overhead_sim_s", overhead, "s")
    benchmark.record("weights_delta", delta, "")


def test_crash_recovery_cost(benchmark, tmp_path):
    def run():
        return run_chaos(
            make_factory(),
            ranks=RANKS,
            iterations=ITERS,
            seed=seed_string("crash", 0),
            snapshot_every=2,
            snapshot_dir=str(tmp_path),
        )

    report = benchmark(run)
    assert report.weights_match
    benchmark.record("fault_sim_s", report.fault_time_s, "s")
    benchmark.record("rank_rebuilds", report.rank_rebuilds, "rebuilds")
    benchmark.record("surviving_ranks", report.surviving_ranks, "ranks")
