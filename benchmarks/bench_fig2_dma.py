"""Benchmark: regenerate Fig. 2 (DMA bandwidth curves)."""

from repro.harness import fig2_dma


def test_fig2_dma_curves(benchmark):
    panels = benchmark(fig2_dma.generate)
    assert set(panels) == {"continuous", "strided"}
    series = {s.label: s for s in panels["continuous"]}
    assert series["64CPE"].bandwidth_gbs[-1] > series["1CPE"].bandwidth_gbs[-1]
    print("\n" + fig2_dma.render(panels))
