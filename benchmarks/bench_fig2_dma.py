"""Benchmark: regenerate Fig. 2 (DMA bandwidth curves)."""

from repro.harness import fig2_dma


def test_fig2_dma_curves(benchmark):
    panels = benchmark(fig2_dma.generate)
    assert set(panels) == {"continuous", "strided"}
    series = {s.label: s for s in panels["continuous"]}
    assert series["64CPE"].bandwidth_gbs[-1] > series["1CPE"].bandwidth_gbs[-1]
    benchmark.record(
        "dma_64cpe_peak", series["64CPE"].bandwidth_gbs[-1], "GB/s", direction="higher"
    )
    benchmark.record(
        "dma_1cpe_peak", series["1CPE"].bandwidth_gbs[-1], "GB/s", direction="higher"
    )
    print("\n" + fig2_dma.render(panels))
