"""Benchmark: regenerate Fig. 11 (communication time fractions)."""

from conftest import run_once

from repro.harness import fig10_scalability, fig11_comm_ratio


def test_fig11_comm_ratio(benchmark):
    points = run_once(benchmark, fig10_scalability.generate)
    at_1024 = {p.label: p.comm_fraction for p in points if p.n_nodes == 1024}
    assert at_1024["AlexNet, B=64"] > at_1024["AlexNet, B=256"]
    print("\n" + fig11_comm_ratio.render(points))
