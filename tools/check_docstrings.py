#!/usr/bin/env python3
"""Docstring-coverage lint (stdlib only; run by CI and tests/test_docstrings.py).

Walks every Python file under ``src/repro/`` with :mod:`ast` and counts
which *public* definitions carry a docstring: modules, and every class,
function or (async) method whose name does not start with ``_``. Coverage
is the documented fraction, and the check is a **ratchet**: the threshold
is pinned just below the coverage at the time the lint landed (75.3% ->
floor 75%), so coverage may only ever rise — new public API without a docstring fails CI, and
anyone raising overall coverage is welcome to raise ``--min`` with it.

Usage::

    python tools/check_docstrings.py [root] [--min PCT] [--list-missing]

Prints the coverage summary and exits 1 if coverage < ``--min`` percent.
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys

#: Coverage floor in percent — pinned just below the measured coverage when
#: the lint landed (75.3%). Ratchet-only: raise it when coverage rises,
#: never lower it to let an undocumented API in.
DEFAULT_MIN_PERCENT = 75.0


def is_public(name: str) -> bool:
    """Public = not underscore-prefixed (dunders like __init__ are not
    counted as public API surface here; the class docstring covers them)."""
    return not name.startswith("_")


def public_definitions(
    path: pathlib.Path, rel: str
) -> list[tuple[str, bool]]:
    """``(qualified_name, has_docstring)`` for the module and each public def.

    Definitions nested inside functions are skipped (closures and local
    helpers are implementation detail, not API surface).
    """
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
    out: list[tuple[str, bool]] = [(rel, ast.get_docstring(tree) is not None)]

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = f"{prefix}{child.name}"
                if is_public(child.name):
                    out.append((name, ast.get_docstring(child) is not None))
                if isinstance(child, ast.ClassDef):
                    walk(child, f"{name}.")

    walk(tree, f"{rel}:")
    return out


def collect(root: pathlib.Path) -> list[tuple[str, bool]]:
    """All public definitions under ``root/src/repro``."""
    src = root / "src" / "repro"
    results: list[tuple[str, bool]] = []
    for path in sorted(src.rglob("*.py")):
        rel = str(path.relative_to(root))
        results.extend(public_definitions(path, rel))
    return results


def coverage_percent(results: list[tuple[str, bool]]) -> float:
    """Documented fraction in percent (100.0 for an empty tree)."""
    if not results:
        return 100.0
    documented = sum(1 for _, has in results if has)
    return 100.0 * documented / len(results)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "root", nargs="?", default=None,
        help="repo root (default: the tool's grandparent directory)",
    )
    parser.add_argument(
        "--min", type=float, default=DEFAULT_MIN_PERCENT, dest="min_percent",
        help=f"minimum coverage percent (default {DEFAULT_MIN_PERCENT})",
    )
    parser.add_argument(
        "--list-missing", action="store_true",
        help="print every public definition lacking a docstring",
    )
    ns = parser.parse_args(sys.argv[1:] if argv is None else argv)
    root = (
        pathlib.Path(ns.root)
        if ns.root
        else pathlib.Path(__file__).resolve().parents[1]
    )

    results = collect(root)
    missing = [name for name, has in results if not has]
    percent = coverage_percent(results)
    if ns.list_missing:
        for name in missing:
            print(f"missing docstring: {name}")
    print(
        f"docstring coverage: {len(results) - len(missing)}/{len(results)} "
        f"public definitions = {percent:.1f}% (floor {ns.min_percent:g}%)"
    )
    if percent < ns.min_percent:
        print(
            "coverage below floor; document the new API or run with "
            "--list-missing to see offenders"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
