#!/usr/bin/env python3
"""Docs link checker (stdlib only; run by CI and tests/test_docs_links.py).

Two guarantees:

1. every relative markdown link in the repo's documentation resolves to
   an existing file or directory (http/mailto/pure-anchor links are
   skipped; ``#fragment`` suffixes are stripped before resolving);
2. every package under ``src/repro/`` is reachable from the
   documentation landing page ``docs/index.md`` — a new subsystem must
   be added to the index before CI goes green.

Usage: ``python tools/check_docs_links.py [repo_root]`` — prints one
line per problem and exits 1 if any were found.
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Markdown files checked for broken relative links.
DOC_GLOBS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "docs/*.md")

#: Inline markdown links: [text](target). Images share the syntax.
_LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks, removed before link extraction (``[i]`` indexing
#: and the like inside code would otherwise false-positive).
_FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def doc_files(root: pathlib.Path) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    return files


def links_in(path: pathlib.Path) -> list[str]:
    text = _FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return _LINK_RE.findall(text)


def is_relative(target: str) -> bool:
    if target.startswith(("http://", "https://", "mailto:", "#")):
        return False
    return "://" not in target


def check_links(root: pathlib.Path) -> list[str]:
    """All problems found (empty list = docs are consistent)."""
    problems: list[str] = []
    index = root / "docs" / "index.md"
    if not index.is_file():
        problems.append("docs/index.md is missing (the documentation landing page)")

    reachable_from_index: set[pathlib.Path] = set()
    for doc in doc_files(root):
        for target in links_in(doc):
            if not is_relative(target):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (doc.parent / rel).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(root)}: broken link '{target}' "
                    f"(resolved to {resolved})"
                )
            elif doc == index:
                reachable_from_index.add(resolved)

    src = root / "src" / "repro"
    for pkg in sorted(p for p in src.iterdir() if (p / "__init__.py").is_file()):
        covered = any(
            target == pkg.resolve() or target.is_relative_to(pkg.resolve())
            for target in reachable_from_index
        )
        if not covered:
            problems.append(
                f"docs/index.md: package src/repro/{pkg.name} is not linked "
                "from the documentation index"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(argv[0]) if argv else pathlib.Path(__file__).resolve().parents[1]
    problems = check_links(root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)")
        return 1
    print(f"docs OK: {len(doc_files(root))} files checked, all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
