#!/usr/bin/env python3
"""Diff two benchmark result sets and fail on regression (CI gate).

Compares ``BENCH_<suite>.json`` files (schema ``repro-bench/1``, written by
``pytest benchmarks/`` via the shared runner) metric by metric:

* only **deterministic** metrics gate by default — they are simulated or
  derived values, bit-stable across machines; ``wall_time`` and other
  machine-dependent timings are skipped unless ``--include-time`` is given;
* a metric with ``direction: lower`` regresses when the candidate exceeds
  baseline by more than the tolerance; ``direction: higher`` is the mirror;
* a baseline metric missing from the candidate is a regression (a silently
  dropped benchmark must not turn CI green); new candidate metrics only
  produce a note;
* improvements beyond tolerance are reported but never fail.

Usage::

    python tools/bench_compare.py BASELINE CANDIDATE [--rel-tol 0.10]
        [--tol METRIC=REL] [--include-time] [--quiet]

``BASELINE``/``CANDIDATE`` are each a directory of ``BENCH_*.json`` files
or a single file. Exits 1 on any regression, 2 on usage/load errors.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.metrics.benchfmt import iter_metrics, load_result_set  # noqa: E402


def compare(
    baseline: dict,
    candidate: dict,
    *,
    rel_tol: float = 0.10,
    per_metric_tol: dict[str, float] | None = None,
    include_time: bool = False,
) -> tuple[list[str], list[str], list[str]]:
    """Compare two result sets (``{suite: payload}`` dicts).

    Returns ``(regressions, improvements, notes)`` as human-readable lines.
    """
    per_metric_tol = per_metric_tol or {}
    regressions: list[str] = []
    improvements: list[str] = []
    notes: list[str] = []

    base_metrics = {
        (suite, test, m["name"]): m
        for suite, payload in baseline.items()
        for test, m in iter_metrics(payload)
    }
    cand_metrics = {
        (suite, test, m["name"]): m
        for suite, payload in candidate.items()
        for test, m in iter_metrics(payload)
    }

    for key, base in sorted(base_metrics.items()):
        suite, test, name = key
        label = f"{suite}::{test}::{name}"
        if not base.get("deterministic", True) and not include_time:
            continue
        tol = per_metric_tol.get(name, rel_tol)
        cand = cand_metrics.get(key)
        if cand is None:
            regressions.append(f"{label}: missing from candidate")
            continue
        bv, cv = float(base["value"]), float(cand["value"])
        if bv == cv:
            continue
        scale = abs(bv) if bv != 0 else max(abs(cv), 1e-30)
        delta = (cv - bv) / scale
        worse = delta > tol if base.get("direction", "lower") == "lower" else -delta > tol
        better = -delta > tol if base.get("direction", "lower") == "lower" else delta > tol
        units = f" {base.get('units')}" if base.get("units") else ""
        line = f"{label}: {bv:g} -> {cv:g}{units} ({delta:+.1%}, tol {tol:.0%})"
        if worse:
            regressions.append(line)
        elif better:
            improvements.append(line)

    for key in sorted(set(cand_metrics) - set(base_metrics)):
        notes.append(f"{key[0]}::{key[1]}::{key[2]}: new metric (not in baseline)")
    return regressions, improvements, notes


def _parse_tol(specs: list[str]) -> dict[str, float]:
    out: dict[str, float] = {}
    for spec in specs:
        name, _, value = spec.partition("=")
        if not name or not value:
            raise ValueError(f"--tol expects METRIC=REL, got {spec!r}")
        out[name] = float(value)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json file or directory")
    parser.add_argument("candidate", help="candidate BENCH_*.json file or directory")
    parser.add_argument(
        "--rel-tol", type=float, default=0.10,
        help="default relative tolerance (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--tol", action="append", default=[], metavar="METRIC=REL",
        help="per-metric tolerance override (repeatable)",
    )
    parser.add_argument(
        "--include-time", action="store_true",
        help="also gate on non-deterministic metrics (wall_time)",
    )
    parser.add_argument("--quiet", action="store_true", help="only print regressions")
    ns = parser.parse_args(argv)

    try:
        per_metric = _parse_tol(ns.tol)
        baseline = load_result_set(ns.baseline)
        candidate = load_result_set(ns.candidate)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no BENCH_*.json under {ns.baseline}", file=sys.stderr)
        return 2

    regressions, improvements, notes = compare(
        baseline,
        candidate,
        rel_tol=ns.rel_tol,
        per_metric_tol=per_metric,
        include_time=ns.include_time,
    )
    for line in regressions:
        print(f"REGRESSION  {line}")
    if not ns.quiet:
        for line in improvements:
            print(f"improvement {line}")
        for line in notes:
            print(f"note        {line}")
    n_gated = sum(
        1
        for payload in baseline.values()
        for _, m in iter_metrics(payload)
        if m.get("deterministic", True) or ns.include_time
    )
    print(
        f"compared {n_gated} gated metric(s) across {len(baseline)} suite(s): "
        f"{len(regressions)} regression(s), {len(improvements)} improvement(s)"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
