"""Setuptools shim so `pip install -e .` works without the `wheel` package.

The environment has no network access and no `wheel` distribution, so PEP
660 editable installs fail; this file lets pip fall back to the legacy
`setup.py develop` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
